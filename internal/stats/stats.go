// Package stats collects the measurements every experiment reports: traffic
// by class and memory tier, instruction throughput, migration activity, and
// security-operation counts.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Tier identifies a memory tier.
type Tier int

const (
	// Device is the GPU-local HBM/GDDR memory.
	Device Tier = iota
	// CXL is the CXL-attached expansion memory.
	CXL
	numTiers
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case Device:
		return "device"
	case CXL:
		return "cxl"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// Class categorises memory traffic.
type Class int

const (
	// Data is application data traffic (including migration copies).
	Data Class = iota
	// Counter is encryption-counter block traffic.
	Counter
	// MAC is MAC sector traffic.
	MAC
	// BMT is integrity-tree node traffic.
	BMT
	// Mapping is CXL-to-GPU mapping table traffic.
	Mapping
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Data:
		return "data"
	case Counter:
		return "counter"
	case MAC:
		return "mac"
	case BMT:
		return "bmt"
	case Mapping:
		return "mapping"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ServeClass identifies a traffic-service client class (salus-serve).
// Order is priority order: lower values are more latency-sensitive and
// are shed last under overload.
type ServeClass int

const (
	// ServeInteractive is latency-sensitive foreground traffic; the
	// degradation tiers never shed it.
	ServeInteractive ServeClass = iota
	// ServeBatch is throughput-oriented traffic, shed only at the
	// deepest degradation tier.
	ServeBatch
	// ServeBulk is background traffic, shed first under pressure.
	ServeBulk
	// NumServeClasses is the fixed class count; per-class arrays are
	// indexed by ServeClass.
	NumServeClasses
)

// String returns the class name.
func (c ServeClass) String() string {
	switch c {
	case ServeInteractive:
		return "interactive"
	case ServeBatch:
		return "batch"
	case ServeBulk:
		return "bulk"
	}
	return fmt.Sprintf("serveclass(%d)", int(c))
}

// ServeOps counts one client class's request outcomes in service mode.
// Served + Shed + Deadline + Overload + Refused covers every request the
// class ever submitted: a request is exactly one of served, shed by a
// degradation tier, rejected on its deadline, refused by admission
// control, or refused typed by the engine (link/fault/ambiguous-write).
type ServeOps struct {
	Served    uint64 // requests completed successfully
	Shed      uint64 // requests shed by a degradation tier (ErrShed)
	Deadline  uint64 // requests rejected on deadline (ErrDeadline)
	Overload  uint64 // requests refused by admission control (ErrOverload)
	Refused   uint64 // engine-level typed refusals (link, fault, ambiguous)
	Retries   uint64 // service-level retries issued for idempotent requests
	Ambiguous uint64 // writes that failed ambiguously (never retried)
}

// Attempts returns every request the class submitted.
func (s *ServeOps) Attempts() uint64 {
	return s.Served + s.Shed + s.Deadline + s.Overload + s.Refused
}

// TenantOps counts one tenant's request outcomes at the pool boundary
// (internal/tenant). Reads+Writes are the attempts that entered the
// tenant's engine; the denial categories are the typed refusals the
// isolation layer returned instead of bytes. Like ServeOps, every field
// is a monotone uint64 and the column set is part of the stable-output
// contract.
type TenantOps struct {
	Name string // tenant identifier ("" renders as "-")

	Reads  uint64 // in-slice reads attempted
	Writes uint64 // in-slice writes attempted

	Denied    uint64 // out-of-slice probes refused typed (ErrTenantDenied)
	Quota     uint64 // ops refused by the tenant op quota (ErrQuota)
	Integrity uint64 // reads refused by MAC/tree verification (spliced ciphertext)
	Faults    uint64 // typed fault/link refusals (transient, poison, link, queue)

	Checkpoints uint64 // per-tenant checkpoint epochs committed
	Recovers    uint64 // per-tenant crash/recover cycles completed
}

// Attempts returns every operation the tenant ever submitted, served or
// refused.
func (t *TenantOps) Attempts() uint64 {
	return t.Reads + t.Writes + t.Denied + t.Quota
}

// HasTenants reports whether any per-tenant activity was recorded.
// Mirroring HasFaults' discipline, every field participates so a tenant
// whose only activity is a trailing category still renders its row.
func (o *Ops) HasTenants() bool {
	for i := range o.Tenants {
		t := &o.Tenants[i]
		if t.Reads != 0 || t.Writes != 0 || t.Denied != 0 || t.Quota != 0 ||
			t.Integrity != 0 || t.Faults != 0 || t.Checkpoints != 0 || t.Recovers != 0 {
			return true
		}
	}
	return false
}

// TenantTable renders the per-tenant rollup with the same stable-column
// discipline as the link/fault lines: every column every time, rows
// sorted by tenant name so map-fed input stays deterministic. Ragged
// input is tolerated — an empty tenant list yields a header-only table,
// unnamed tenants render as "-", duplicate names keep their own rows.
func (o *Ops) TenantTable() *Table {
	t := &Table{Header: []string{"tenant", "reads", "writes", "denied", "quota", "integrity", "faults", "ckpts", "recovers"}}
	for i := range o.Tenants {
		row := &o.Tenants[i]
		name := row.Name
		if name == "" {
			name = "-"
		}
		t.AddRow(name,
			fmt.Sprintf("%d", row.Reads), fmt.Sprintf("%d", row.Writes),
			fmt.Sprintf("%d", row.Denied), fmt.Sprintf("%d", row.Quota),
			fmt.Sprintf("%d", row.Integrity), fmt.Sprintf("%d", row.Faults),
			fmt.Sprintf("%d", row.Checkpoints), fmt.Sprintf("%d", row.Recovers))
	}
	t.SortRowsByFirstColumn()
	return t
}

// MigrateOps counts one attested live migration's activity
// (internal/migrate). The sent/skipped split is the resume contract
// made measurable: chunks the destination already verified are skipped,
// never re-streamed. The four rejection counters are the typed-failure
// taxonomy observed at the receiving endpoint — in an honest run all
// four stay zero. Like TenantOps, every field is monotone and the
// column set is part of the stable-output contract.
type MigrateOps struct {
	Tenant string // migrated tenant id ("" renders as "-")

	Rounds        uint64 // delta rounds streamed, including the full bootstrap round
	ChunksSent    uint64 // stream chunks transferred and verified
	ChunksSkipped uint64 // verified chunks not re-sent across resumes
	BytesStreamed uint64 // framed stream bytes delivered
	Retries       uint64 // link-transfer retries (flaps absorbed by backoff)
	Resumes       uint64 // record-level resumes after a lost link came back

	Torn   uint64 // records rejected ErrTornStream (truncation, bit flips)
	Replay uint64 // records rejected ErrReplay (reorder, duplication)
	Attest uint64 // records rejected ErrAttestation (MAC/handshake forgery)
	Fresh  uint64 // records rejected ErrFreshness (epoch/lineage rollback)
}

// HasMigrates reports whether any migration activity was recorded.
// Every field participates, mirroring HasTenants' discipline.
func (o *Ops) HasMigrates() bool {
	for i := range o.Migrates {
		m := &o.Migrates[i]
		if m.Rounds != 0 || m.ChunksSent != 0 || m.ChunksSkipped != 0 ||
			m.BytesStreamed != 0 || m.Retries != 0 || m.Resumes != 0 ||
			m.Torn != 0 || m.Replay != 0 || m.Attest != 0 || m.Fresh != 0 {
			return true
		}
	}
	return false
}

// MigrateTable renders the migration rollup with the same stable-column
// discipline as TenantTable: every column every time, rows sorted by
// tenant name, ragged input tolerated (empty list renders header-only,
// unnamed rows render as "-", duplicates keep their own rows).
func (o *Ops) MigrateTable() *Table {
	t := &Table{Header: []string{"tenant", "rounds", "sent", "skipped", "bytes", "retries", "resumes", "torn", "replay", "attest", "fresh"}}
	for i := range o.Migrates {
		row := &o.Migrates[i]
		name := row.Tenant
		if name == "" {
			name = "-"
		}
		t.AddRow(name,
			fmt.Sprintf("%d", row.Rounds), fmt.Sprintf("%d", row.ChunksSent),
			fmt.Sprintf("%d", row.ChunksSkipped), fmt.Sprintf("%d", row.BytesStreamed),
			fmt.Sprintf("%d", row.Retries), fmt.Sprintf("%d", row.Resumes),
			fmt.Sprintf("%d", row.Torn), fmt.Sprintf("%d", row.Replay),
			fmt.Sprintf("%d", row.Attest), fmt.Sprintf("%d", row.Fresh))
	}
	t.SortRowsByFirstColumn()
	return t
}

// SecurityClasses lists the classes counted as security traffic. Mapping
// traffic is bookkeeping for the DRAM cache, present in all models, and is
// not security metadata.
var SecurityClasses = []Class{Counter, MAC, BMT}

// Traffic accumulates bytes moved, indexed by tier and class.
type Traffic struct {
	bytes [numTiers][numClasses]uint64
}

// Add records n bytes of traffic of class c on tier t.
func (tr *Traffic) Add(t Tier, c Class, n uint64) { tr.bytes[t][c] += n }

// Bytes returns the bytes recorded for (tier, class).
func (tr *Traffic) Bytes(t Tier, c Class) uint64 { return tr.bytes[t][c] }

// TierTotal returns all bytes moved on a tier.
func (tr *Traffic) TierTotal(t Tier) uint64 {
	var sum uint64
	for c := Class(0); c < numClasses; c++ {
		sum += tr.bytes[t][c]
	}
	return sum
}

// SecurityBytes returns the security-metadata bytes moved on a tier.
func (tr *Traffic) SecurityBytes(t Tier) uint64 {
	var sum uint64
	for _, c := range SecurityClasses {
		sum += tr.bytes[t][c]
	}
	return sum
}

// TotalSecurityBytes returns security-metadata bytes across both tiers.
func (tr *Traffic) TotalSecurityBytes() uint64 {
	return tr.SecurityBytes(Device) + tr.SecurityBytes(CXL)
}

// Total returns all bytes across tiers and classes.
func (tr *Traffic) Total() uint64 { return tr.TierTotal(Device) + tr.TierTotal(CXL) }

// Ops counts security and migration operations.
type Ops struct {
	Encryptions      uint64 // OTP applications on writes / re-encryptions
	Decryptions      uint64
	ReEncryptions    uint64 // re-encryptions caused purely by data relocation
	MACComputes      uint64
	MACVerifies      uint64
	BMTVerifies      uint64
	BMTUpdates       uint64
	CounterOverflows uint64

	PagesMigratedIn      uint64 // CXL -> device
	PagesEvicted         uint64 // device -> CXL
	ChunksWrittenBack    uint64
	ChunksMigrated       uint64
	MACFetchesLazy       uint64 // fetch-on-access MAC sector reads
	MappingCacheHits     uint64
	MappingCacheMisses   uint64
	MappingInvalidations uint64 // directed invalidation messages sent to GPC mapping caches

	// Fault-model activity; all zero in a fault-free run.
	FaultsTransient       uint64 // transient link faults injected
	FaultsPoison          uint64 // uncorrectable media errors injected
	FaultsStuckBit        uint64 // stuck-at media bits injected
	Retries               uint64 // transient-fault retries issued
	RetryBackoffCycles    uint64 // simulated cycles spent backing off
	TransparentRecoveries uint64 // frame quarantines with no data loss
	FramesQuarantined     uint64 // device frames retired
	ChunksPoisoned        uint64 // home chunks quarantined
	PagesPinned           uint64 // pages pinned to home-tier access

	// Checkpoint-journal activity; all zero when no incremental
	// checkpoints are taken.
	Checkpoints          uint64 // checkpoint epochs committed
	CheckpointPages      uint64 // dirty pages journaled across all epochs
	CheckpointWritebacks uint64 // dirty resident chunks collapsed home pre-journal
	CheckpointBytes      uint64 // framed journal bytes written
	CheckpointCycles     uint64 // simulated cycles charged to persistence

	// CXL link degradation activity; all zero when no link model is
	// attached.
	LinkFlaps          uint64 // link state transitions observed
	LinkDownRefusals   uint64 // home transfers refused by a down link
	LinkFastFails      uint64 // home transfers fast-failed by the open breaker
	BreakerOpens       uint64 // circuit-breaker closed/half-open -> open transitions
	BreakerCloses      uint64 // circuit-breaker -> closed recoveries
	LinkLatencyCycles  uint64 // brownout latency surcharge, simulated cycles
	WritebacksQueued   uint64 // evictions parked on the dirty-writeback queue
	WritebacksDrained  uint64 // parked writebacks drained back home
	WritebacksDropped  uint64 // evictions refused by a full queue
	WritebackQueuePeak uint64 // queue depth high-water mark

	// Traffic-service activity (salus-serve), per client class; all zero
	// when no service ran.
	Serve [NumServeClasses]ServeOps

	// Per-tenant pool activity (internal/tenant); empty when no tenant
	// pool ran.
	Tenants []TenantOps

	// Live-migration activity (internal/migrate); empty when no tenant
	// migrated.
	Migrates []MigrateOps
}

// HasFaults reports whether any fault-model activity was recorded. Every
// fault counter participates — including the trailing backoff/recovery
// categories — so a run whose only activity is in a trailing category
// still renders its faults line and the columns stay comparable across
// runs.
func (o *Ops) HasFaults() bool {
	return o.FaultsTransient != 0 || o.FaultsPoison != 0 || o.FaultsStuckBit != 0 ||
		o.Retries != 0 || o.RetryBackoffCycles != 0 || o.TransparentRecoveries != 0 ||
		o.FramesQuarantined != 0 || o.ChunksPoisoned != 0 || o.PagesPinned != 0
}

// HasLink reports whether any link-degradation activity was recorded.
func (o *Ops) HasLink() bool {
	return o.LinkFlaps != 0 || o.LinkDownRefusals != 0 || o.LinkFastFails != 0 ||
		o.BreakerOpens != 0 || o.BreakerCloses != 0 || o.LinkLatencyCycles != 0 ||
		o.WritebacksQueued != 0 || o.WritebacksDrained != 0 || o.WritebacksDropped != 0 ||
		o.WritebackQueuePeak != 0
}

// HasCheckpoints reports whether any checkpoint-journal activity was
// recorded.
func (o *Ops) HasCheckpoints() bool {
	return o.Checkpoints != 0 || o.CheckpointPages != 0 || o.CheckpointBytes != 0
}

// HasServe reports whether any traffic-service activity was recorded.
// Every ServeOps field participates, mirroring HasFaults' discipline, so
// a run whose only activity is a trailing category still renders its
// serve lines.
func (o *Ops) HasServe() bool {
	for c := range o.Serve {
		s := &o.Serve[c]
		if s.Served != 0 || s.Shed != 0 || s.Deadline != 0 || s.Overload != 0 ||
			s.Refused != 0 || s.Retries != 0 || s.Ambiguous != 0 {
			return true
		}
	}
	return false
}

// Run is the full measurement record of one simulation.
type Run struct {
	Workload string
	Model    string

	Cycles       uint64
	Instructions uint64
	MemRequests  uint64

	Traffic Traffic
	Ops     Ops

	// BusyCycles per tier: cycles the tier's servers spent serving, used
	// for bandwidth-utilisation figures.
	DeviceBusyCycles uint64
	CXLBusyCycles    uint64

	// CacheHitRates holds metadata-cache sector hit rates (0..1) keyed by
	// "<side>.<class>", when the security engine reports them.
	CacheHitRates map[string]float64
}

// IPC returns instructions per cycle.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// SecurityTrafficShare returns security bytes / total bytes on a tier.
func (r *Run) SecurityTrafficShare(t Tier) float64 {
	tot := r.Traffic.TierTotal(t)
	if tot == 0 {
		return 0
	}
	return float64(r.Traffic.SecurityBytes(t)) / float64(tot)
}

// String renders a compact single-run summary.
func (r *Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload=%s model=%s cycles=%d instructions=%d ipc=%.4f\n",
		r.Workload, r.Model, r.Cycles, r.Instructions, r.IPC())
	for t := Tier(0); t < numTiers; t++ {
		fmt.Fprintf(&b, "  %-6s total=%dB security=%dB", t, r.Traffic.TierTotal(t), r.Traffic.SecurityBytes(t))
		for c := Class(0); c < numClasses; c++ {
			fmt.Fprintf(&b, " %s=%dB", c, r.Traffic.Bytes(t, c))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  migrations in=%d evictions=%d chunksBack=%d reenc=%d lazyMAC=%d\n",
		r.Ops.PagesMigratedIn, r.Ops.PagesEvicted, r.Ops.ChunksWrittenBack,
		r.Ops.ReEncryptions, r.Ops.MACFetchesLazy)
	if r.Ops.HasFaults() {
		fmt.Fprintf(&b, "  faults transient=%d poison=%d stuckBit=%d retries=%d backoff=%d recovered=%d quarantinedFrames=%d poisonedChunks=%d pinnedPages=%d\n",
			r.Ops.FaultsTransient, r.Ops.FaultsPoison, r.Ops.FaultsStuckBit,
			r.Ops.Retries, r.Ops.RetryBackoffCycles, r.Ops.TransparentRecoveries,
			r.Ops.FramesQuarantined, r.Ops.ChunksPoisoned, r.Ops.PagesPinned)
	}
	if r.Ops.HasLink() {
		fmt.Fprintf(&b, "  link flaps=%d downRefusals=%d fastFails=%d breakerOpens=%d breakerCloses=%d latencyCycles=%d wbQueued=%d wbDrained=%d wbDropped=%d wbPeak=%d\n",
			r.Ops.LinkFlaps, r.Ops.LinkDownRefusals, r.Ops.LinkFastFails,
			r.Ops.BreakerOpens, r.Ops.BreakerCloses, r.Ops.LinkLatencyCycles,
			r.Ops.WritebacksQueued, r.Ops.WritebacksDrained, r.Ops.WritebacksDropped,
			r.Ops.WritebackQueuePeak)
	}
	if r.Ops.HasCheckpoints() {
		perEpoch := 0.0
		if r.Ops.Checkpoints > 0 {
			perEpoch = float64(r.Ops.CheckpointBytes) / float64(r.Ops.Checkpoints)
		}
		fmt.Fprintf(&b, "  checkpoints epochs=%d pages=%d writebacks=%d journalBytes=%d (%.0fB/epoch) cycles=%d\n",
			r.Ops.Checkpoints, r.Ops.CheckpointPages, r.Ops.CheckpointWritebacks,
			r.Ops.CheckpointBytes, perEpoch, r.Ops.CheckpointCycles)
	}
	if r.Ops.HasServe() {
		// One line per class, every class every time: the column set is
		// part of the stable-output contract, like the faults line.
		for c := ServeClass(0); c < NumServeClasses; c++ {
			s := &r.Ops.Serve[c]
			fmt.Fprintf(&b, "  serve class=%s served=%d shed=%d deadline=%d overload=%d refused=%d retries=%d ambiguous=%d\n",
				c, s.Served, s.Shed, s.Deadline, s.Overload, s.Refused, s.Retries, s.Ambiguous)
		}
	}
	if r.Ops.HasTenants() {
		// One line per tenant, every column every time: the column set is
		// part of the stable-output contract, like the serve lines.
		for i := range r.Ops.Tenants {
			tn := &r.Ops.Tenants[i]
			name := tn.Name
			if name == "" {
				name = "-"
			}
			fmt.Fprintf(&b, "  tenant id=%s reads=%d writes=%d denied=%d quota=%d integrity=%d faults=%d ckpts=%d recovers=%d\n",
				name, tn.Reads, tn.Writes, tn.Denied, tn.Quota, tn.Integrity, tn.Faults, tn.Checkpoints, tn.Recovers)
		}
	}
	if r.Ops.HasMigrates() {
		// One line per migration, every column every time, like the
		// tenant lines.
		for i := range r.Ops.Migrates {
			m := &r.Ops.Migrates[i]
			name := m.Tenant
			if name == "" {
				name = "-"
			}
			fmt.Fprintf(&b, "  migrate tenant=%s rounds=%d sent=%d skipped=%d bytes=%d retries=%d resumes=%d torn=%d replay=%d attest=%d fresh=%d\n",
				name, m.Rounds, m.ChunksSent, m.ChunksSkipped, m.BytesStreamed,
				m.Retries, m.Resumes, m.Torn, m.Replay, m.Attest, m.Fresh)
		}
	}
	if len(r.CacheHitRates) > 0 {
		keys := make([]string, 0, len(r.CacheHitRates))
		for k := range r.CacheHitRates {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  metadata cache hit rates:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.2f", k, r.CacheHitRates[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table is a simple column-aligned text table used by the bench harness.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns. Rows may be ragged —
// shorter or longer than the header — and empty; extra columns render
// under an empty header cell rather than panicking.
func (t *Table) String() string {
	ncols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsByFirstColumn orders rows lexicographically by their first cell,
// keeping output stable across map iteration order. Empty rows sort first.
func (t *Table) SortRowsByFirstColumn() {
	key := func(row []string) string {
		if len(row) == 0 {
			return ""
		}
		return row[0]
	}
	sort.SliceStable(t.Rows, func(i, j int) bool { return key(t.Rows[i]) < key(t.Rows[j]) })
}
