package stats

import (
	"strings"
	"testing"
)

func TestTrafficAccumulation(t *testing.T) {
	var tr Traffic
	tr.Add(Device, Data, 100)
	tr.Add(Device, Counter, 10)
	tr.Add(Device, MAC, 20)
	tr.Add(Device, BMT, 5)
	tr.Add(Device, Mapping, 7)
	tr.Add(CXL, Data, 50)
	tr.Add(CXL, MAC, 8)

	if got := tr.Bytes(Device, Data); got != 100 {
		t.Errorf("Bytes(Device, Data) = %d, want 100", got)
	}
	if got := tr.TierTotal(Device); got != 142 {
		t.Errorf("TierTotal(Device) = %d, want 142", got)
	}
	if got := tr.SecurityBytes(Device); got != 35 {
		t.Errorf("SecurityBytes(Device) = %d, want 35 (mapping excluded)", got)
	}
	if got := tr.SecurityBytes(CXL); got != 8 {
		t.Errorf("SecurityBytes(CXL) = %d, want 8", got)
	}
	if got := tr.TotalSecurityBytes(); got != 43 {
		t.Errorf("TotalSecurityBytes = %d, want 43", got)
	}
	if got := tr.Total(); got != 200 {
		t.Errorf("Total = %d, want 200", got)
	}
}

func TestRunIPC(t *testing.T) {
	r := Run{Cycles: 1000, Instructions: 2500}
	if got := r.IPC(); got != 2.5 {
		t.Errorf("IPC = %v, want 2.5", got)
	}
	empty := Run{}
	if got := empty.IPC(); got != 0 {
		t.Errorf("IPC of empty run = %v, want 0", got)
	}
}

func TestSecurityTrafficShare(t *testing.T) {
	r := Run{}
	r.Traffic.Add(CXL, Data, 80)
	r.Traffic.Add(CXL, MAC, 20)
	if got := r.SecurityTrafficShare(CXL); got != 0.2 {
		t.Errorf("SecurityTrafficShare = %v, want 0.2", got)
	}
	if got := r.SecurityTrafficShare(Device); got != 0 {
		t.Errorf("SecurityTrafficShare on empty tier = %v, want 0", got)
	}
}

func TestRunString(t *testing.T) {
	r := Run{Workload: "bfs", Model: "salus", Cycles: 10, Instructions: 20}
	s := r.String()
	for _, frag := range []string{"workload=bfs", "model=salus", "ipc=2.0000", "device", "cxl"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestRunStringFaultsLine(t *testing.T) {
	r := Run{Workload: "bfs", Model: "salus"}
	if strings.Contains(r.String(), "faults ") {
		t.Errorf("fault-free run should not render a faults line:\n%s", r.String())
	}
	if r.Ops.HasFaults() {
		t.Error("zero Ops reported HasFaults")
	}
	r.Ops.FaultsTransient = 7
	r.Ops.Retries = 7
	r.Ops.ChunksPoisoned = 2
	if !r.Ops.HasFaults() {
		t.Error("non-zero fault counters not reported by HasFaults")
	}
	s := r.String()
	for _, frag := range []string{"faults transient=7", "retries=7", "poisonedChunks=2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestHasFaultsIncludesTrailingCategories(t *testing.T) {
	// The faults line must render (with its full, stable column set) even
	// when only a trailing category is non-zero; the old predicate skipped
	// RetryBackoffCycles and TransparentRecoveries, silently dropping the
	// line from such runs.
	backoff := Run{}
	backoff.Ops.RetryBackoffCycles = 64
	if !backoff.Ops.HasFaults() {
		t.Error("backoff-only Ops not reported by HasFaults")
	}
	if !strings.Contains(backoff.String(), "backoff=64") {
		t.Errorf("backoff-only run dropped its faults line:\n%s", backoff.String())
	}
	recovered := Run{}
	recovered.Ops.TransparentRecoveries = 3
	if !recovered.Ops.HasFaults() {
		t.Error("recovery-only Ops not reported by HasFaults")
	}
	if !strings.Contains(recovered.String(), "recovered=3") {
		t.Errorf("recovery-only run dropped its faults line:\n%s", recovered.String())
	}
	// Column stability: the line carries every category even when zero.
	for _, frag := range []string{"transient=0", "poison=0", "stuckBit=0", "retries=0",
		"recovered=0", "quarantinedFrames=0", "poisonedChunks=0", "pinnedPages=0"} {
		if !strings.Contains(backoff.String(), frag) {
			t.Errorf("faults line missing stable column %q:\n%s", frag, backoff.String())
		}
	}
}

func TestRunStringLinkLine(t *testing.T) {
	r := Run{Workload: "bfs", Model: "salus"}
	if strings.Contains(r.String(), "link ") {
		t.Errorf("link-free run should not render a link line:\n%s", r.String())
	}
	if r.Ops.HasLink() {
		t.Error("zero Ops reported HasLink")
	}
	r.Ops.LinkFlaps = 4
	r.Ops.LinkDownRefusals = 9
	r.Ops.BreakerOpens = 2
	r.Ops.WritebacksQueued = 3
	r.Ops.WritebacksDrained = 3
	r.Ops.WritebackQueuePeak = 2
	if !r.Ops.HasLink() {
		t.Error("non-zero link counters not reported by HasLink")
	}
	s := r.String()
	for _, frag := range []string{"link flaps=4", "downRefusals=9", "breakerOpens=2",
		"wbQueued=3", "wbDrained=3", "wbDropped=0", "wbPeak=2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
	// A drain with zero flaps (e.g. only breaker fast-fails recorded)
	// still renders the line.
	just := Run{}
	just.Ops.WritebackQueuePeak = 1
	if !just.Ops.HasLink() || !strings.Contains(just.String(), "wbPeak=1") {
		t.Error("trailing-only link counter dropped the link line")
	}
}

func TestRunStringCheckpointLine(t *testing.T) {
	r := Run{Workload: "bfs", Model: "salus"}
	if strings.Contains(r.String(), "checkpoints ") {
		t.Errorf("checkpoint-free run should not render a checkpoints line:\n%s", r.String())
	}
	if r.Ops.HasCheckpoints() {
		t.Error("zero Ops reported HasCheckpoints")
	}
	r.Ops.Checkpoints = 4
	r.Ops.CheckpointPages = 9
	r.Ops.CheckpointWritebacks = 5
	r.Ops.CheckpointBytes = 4000
	r.Ops.CheckpointCycles = 300
	if !r.Ops.HasCheckpoints() {
		t.Error("non-zero checkpoint counters not reported by HasCheckpoints")
	}
	s := r.String()
	for _, frag := range []string{"checkpoints epochs=4", "pages=9", "writebacks=5", "journalBytes=4000", "(1000B/epoch)", "cycles=300"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestTierClassString(t *testing.T) {
	if Device.String() != "device" || CXL.String() != "cxl" {
		t.Error("tier names wrong")
	}
	names := map[Class]string{Data: "data", Counter: "counter", MAC: "mac", BMT: "bmt", Mapping: "mapping"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
	if s := Tier(9).String(); !strings.Contains(s, "9") {
		t.Errorf("unknown tier string = %q", s)
	}
	if s := Class(9).String(); !strings.Contains(s, "9") {
		t.Errorf("unknown class string = %q", s)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Header: []string{"workload", "ipc"}}
	tab.AddRow("nw", "1.30")
	tab.AddRow("bfs", "0.95")
	tab.SortRowsByFirstColumn()
	if tab.Rows[0][0] != "bfs" {
		t.Errorf("sort failed: first row %v", tab.Rows[0])
	}
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "workload") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule line = %q", lines[1])
	}
}

func TestTableToleratesEmptyAndRaggedRows(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("zeta", "1")
	tb.AddRow()                              // empty row
	tb.AddRow("alpha", "2", "extra", "wide") // wider than the header
	tb.AddRow("mid")                         // narrower than the header

	tb.SortRowsByFirstColumn() // must not panic on the empty row
	if len(tb.Rows[0]) != 0 {
		t.Errorf("empty row should sort first, got %v", tb.Rows[0])
	}
	if tb.Rows[1][0] != "alpha" || tb.Rows[3][0] != "zeta" {
		t.Errorf("rows not sorted: %v", tb.Rows)
	}

	out := tb.String() // must not panic on ragged rows
	for _, want := range []string{"name", "alpha", "extra", "wide", "mid", "zeta"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableEmpty(t *testing.T) {
	tb := &Table{}
	tb.SortRowsByFirstColumn()
	if out := tb.String(); out == "" {
		t.Error("empty table should still render the separator line")
	}
}

func TestRunStringServeLines(t *testing.T) {
	r := Run{Workload: "serve", Model: "salus"}
	if strings.Contains(r.String(), "serve class=") {
		t.Errorf("serve-free run should not render serve lines:\n%s", r.String())
	}
	if r.Ops.HasServe() {
		t.Error("zero Ops reported HasServe")
	}
	r.Ops.Serve[ServeInteractive].Served = 90
	r.Ops.Serve[ServeInteractive].Deadline = 1
	r.Ops.Serve[ServeBulk].Shed = 12
	if !r.Ops.HasServe() {
		t.Error("non-zero serve counters not reported by HasServe")
	}
	s := r.String()
	// One line per class, every class every time, full stable column set.
	for _, frag := range []string{
		"serve class=interactive served=90 shed=0 deadline=1 overload=0 refused=0 retries=0 ambiguous=0",
		"serve class=batch served=0 shed=0 deadline=0 overload=0 refused=0 retries=0 ambiguous=0",
		"serve class=bulk served=0 shed=12 deadline=0 overload=0 refused=0 retries=0 ambiguous=0",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing serve line %q:\n%s", frag, s)
		}
	}
}

func TestHasServeTrailingCategories(t *testing.T) {
	// Every ServeOps field participates in HasServe, mirroring the
	// HasFaults trailing-category fix from PR 5.
	cases := []func(*Ops){
		func(o *Ops) { o.Serve[ServeBatch].Served = 1 },
		func(o *Ops) { o.Serve[ServeBatch].Shed = 1 },
		func(o *Ops) { o.Serve[ServeBatch].Deadline = 1 },
		func(o *Ops) { o.Serve[ServeBatch].Overload = 1 },
		func(o *Ops) { o.Serve[ServeBatch].Refused = 1 },
		func(o *Ops) { o.Serve[ServeBatch].Retries = 1 },
		func(o *Ops) { o.Serve[ServeBatch].Ambiguous = 1 },
	}
	for i, set := range cases {
		var o Ops
		set(&o)
		if !o.HasServe() {
			t.Errorf("case %d: single non-zero serve field not reported by HasServe", i)
		}
	}
	s := ServeOps{Served: 3, Shed: 1, Deadline: 1, Overload: 1, Refused: 2}
	if got := s.Attempts(); got != 8 {
		t.Errorf("Attempts() = %d, want 8", got)
	}
}

func TestServeClassString(t *testing.T) {
	want := map[ServeClass]string{ServeInteractive: "interactive", ServeBatch: "batch", ServeBulk: "bulk"}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("ServeClass(%d).String() = %q, want %q", int(c), c.String(), name)
		}
	}
	if got := ServeClass(99).String(); got != "serveclass(99)" {
		t.Errorf("out-of-range class String() = %q", got)
	}
	if NumServeClasses != 3 {
		t.Errorf("NumServeClasses = %d, want 3", NumServeClasses)
	}
}

// TestTenantTableRaggedInput pins the ragged-input contract of the
// per-tenant rollup: an empty tenant list renders header-only, unnamed
// tenants render as "-", duplicate names keep their own rows, and
// map-fed input comes out sorted by name.
func TestTenantTableRaggedInput(t *testing.T) {
	empty := (&Ops{}).TenantTable().String()
	for _, col := range []string{"tenant", "reads", "writes", "denied", "quota", "integrity", "faults", "ckpts", "recovers"} {
		if !strings.Contains(empty, col) {
			t.Fatalf("empty table missing column %q:\n%s", col, empty)
		}
	}
	if rows := (&Ops{}).TenantTable().Rows; len(rows) != 0 {
		t.Fatalf("empty tenant list must render header-only, got %d rows", len(rows))
	}

	o := Ops{Tenants: []TenantOps{
		{Name: "zeta", Reads: 1},
		{Name: "", Quota: 7},
		{Name: "alpha", Denied: 2},
		{Name: "alpha", Recovers: 3}, // duplicate name: its own row survives
	}}
	if !o.HasTenants() {
		t.Fatal("HasTenants missed recorded activity")
	}
	tab := o.TenantTable()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d, want 4 (duplicates must not merge)", len(tab.Rows))
	}
	if tab.Rows[0][0] != "-" {
		t.Fatalf("unnamed tenant rendered %q, want \"-\"", tab.Rows[0][0])
	}
	if tab.Rows[1][0] != "alpha" || tab.Rows[2][0] != "alpha" || tab.Rows[3][0] != "zeta" {
		t.Fatalf("rows not name-sorted: %v", tab.Rows)
	}
	if got := tab.Rows[0][4]; got != "7" {
		t.Fatalf("unnamed tenant quota cell %q, want 7", got)
	}

	// A tenant whose only activity is a trailing category still counts.
	trail := Ops{Tenants: []TenantOps{{Name: "idle"}, {Name: "ck", Recovers: 1}}}
	if !trail.HasTenants() {
		t.Fatal("HasTenants missed trailing-category activity")
	}
	if (&Ops{Tenants: []TenantOps{{Name: "idle"}}}).HasTenants() {
		t.Fatal("HasTenants reported activity for an all-zero tenant")
	}
}

// TestMigrateTableRaggedInput pins the ragged-input contract of the
// migration rollup, mirroring the TenantTable convention: an empty
// migration list renders header-only, unnamed rows render as "-",
// duplicate names keep their own rows, map-fed input comes out sorted,
// and trailing-category-only activity still counts.
func TestMigrateTableRaggedInput(t *testing.T) {
	empty := (&Ops{}).MigrateTable().String()
	for _, col := range []string{"tenant", "rounds", "sent", "skipped", "bytes", "retries", "resumes", "torn", "replay", "attest", "fresh"} {
		if !strings.Contains(empty, col) {
			t.Fatalf("empty table missing column %q:\n%s", col, empty)
		}
	}
	if rows := (&Ops{}).MigrateTable().Rows; len(rows) != 0 {
		t.Fatalf("empty migration list must render header-only, got %d rows", len(rows))
	}

	o := Ops{Migrates: []MigrateOps{
		{Tenant: "zeta", Rounds: 2},
		{Tenant: "", Retries: 5},
		{Tenant: "alpha", ChunksSent: 9},
		{Tenant: "alpha", Fresh: 1}, // duplicate name: its own row survives
	}}
	if !o.HasMigrates() {
		t.Fatal("HasMigrates missed recorded activity")
	}
	tab := o.MigrateTable()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d, want 4 (duplicates must not merge)", len(tab.Rows))
	}
	if tab.Rows[0][0] != "-" {
		t.Fatalf("unnamed migration rendered %q, want \"-\"", tab.Rows[0][0])
	}
	if tab.Rows[1][0] != "alpha" || tab.Rows[2][0] != "alpha" || tab.Rows[3][0] != "zeta" {
		t.Fatalf("rows not name-sorted: %v", tab.Rows)
	}
	if got := tab.Rows[0][5]; got != "5" {
		t.Fatalf("unnamed migration retries cell %q, want 5", got)
	}

	// A migration whose only activity is the trailing rejection
	// category still counts; an all-zero row does not.
	if !(&Ops{Migrates: []MigrateOps{{Tenant: "x", Fresh: 1}}}).HasMigrates() {
		t.Fatal("HasMigrates missed trailing-category activity")
	}
	if (&Ops{Migrates: []MigrateOps{{Tenant: "idle"}}}).HasMigrates() {
		t.Fatal("HasMigrates reported activity for an all-zero row")
	}

	// The Run summary renders one migrate line per entry.
	r := Run{Ops: Ops{Migrates: []MigrateOps{{Tenant: "m", Rounds: 3, BytesStreamed: 77}}}}
	if s := r.String(); !strings.Contains(s, "migrate tenant=m rounds=3 sent=0 skipped=0 bytes=77") {
		t.Fatalf("Run summary missing migrate line:\n%s", s)
	}
}
