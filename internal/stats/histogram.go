package stats

import (
	"fmt"
	"math/bits"
)

// histBuckets is the fixed bucket count of a Histogram: bucket 0 holds
// exact zeros and bucket i (1..64) holds values whose bit length is i,
// i.e. the range [2^(i-1), 2^i). Values are uint64, so no input can
// overflow the top bucket — the layout saturates by construction.
const histBuckets = 65

// Histogram is a fixed log-bucket histogram for latency-style
// measurements (simulated cycles). Buckets are powers of two, so the
// memory footprint is constant regardless of the value range, and
// quantile estimates carry at most one octave of bucket error — the
// exact minimum and maximum are tracked alongside, so P clamps to the
// true extremes (and is exact for empty and single-sample histograms).
//
// The zero value is ready to use. A Histogram is not goroutine-safe;
// either confine one per goroutine and Merge at the end, or guard it
// with the lock of the structure that owns it.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// bucketOf returns the bucket index of a value.
func bucketOf(v uint64) int { return bits.Len64(v) }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min and Max return the exact observed extremes (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observed value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of the observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge folds o into h. Merging an empty histogram is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
}

// P returns the estimated q-quantile (q in [0, 1]): the upper bound of
// the first bucket whose cumulative count reaches q×count, clamped into
// [Min, Max] so the estimate never leaves the observed range. An empty
// histogram returns 0; a single-sample histogram returns that sample
// for every q.
func (h *Histogram) P(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// rank is the 1-based position of the quantile sample; ceil(q*count)
	// computed in integer arithmetic to stay exact for large counts.
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			var hi uint64
			if i == 0 {
				hi = 0
			} else if i >= 64 {
				hi = ^uint64(0)
			} else {
				hi = uint64(1)<<uint(i) - 1
			}
			if hi < h.min {
				hi = h.min
			}
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// String renders one stable summary row: count, mean, the standard
// latency quantiles, and the exact max. Column set and order never
// change, so rows from different runs diff cleanly.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p90=%d p99=%d p999=%d max=%d",
		h.count, h.Mean(), h.P(0.50), h.P(0.90), h.P(0.99), h.P(0.999), h.max)
}

// QuantileRow returns the standard table cells for one histogram:
// n, p50, p90, p99, p999, max — the row format salus-serve -report and
// the serve campaign summaries share.
func (h *Histogram) QuantileRow() []string {
	return []string{
		fmt.Sprintf("%d", h.count),
		fmt.Sprintf("%d", h.P(0.50)),
		fmt.Sprintf("%d", h.P(0.90)),
		fmt.Sprintf("%d", h.P(0.99)),
		fmt.Sprintf("%d", h.P(0.999)),
		fmt.Sprintf("%d", h.max),
	}
}

// QuantileHeader returns the column headers matching QuantileRow, with a
// leading label column name.
func QuantileHeader(label string) []string {
	return append([]string{label}, "n", "p50", "p90", "p99", "p999", "max")
}
