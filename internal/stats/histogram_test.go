package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("empty histogram: count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram extremes: min=%d max=%d", h.Min(), h.Max())
	}
	if h.Mean() != 0 {
		t.Fatalf("empty histogram mean: %v", h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := h.P(q); got != 0 {
			t.Fatalf("empty histogram P(%v) = %d, want 0", q, got)
		}
	}
	want := "n=0 mean=0.0 p50=0 p90=0 p99=0 p999=0 max=0"
	if got := h.String(); got != want {
		t.Fatalf("empty String() = %q, want %q", got, want)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	for _, v := range []uint64{0, 1, 7, 1000, math.MaxUint64} {
		var h Histogram
		h.Observe(v)
		if h.Count() != 1 || h.Sum() != v {
			t.Fatalf("v=%d: count=%d sum=%d", v, h.Count(), h.Sum())
		}
		if h.Min() != v || h.Max() != v {
			t.Fatalf("v=%d: min=%d max=%d", v, h.Min(), h.Max())
		}
		// A single sample is every quantile: min/max clamping makes the
		// estimate exact regardless of bucket width.
		for _, q := range []float64{0, 0.001, 0.5, 0.99, 0.999, 1} {
			if got := h.P(q); got != v {
				t.Fatalf("v=%d: P(%v) = %d, want %d", v, q, got, v)
			}
		}
	}
}

func TestHistogramSaturating(t *testing.T) {
	// Values at and near the top of the uint64 range must land in the
	// last bucket without overflowing the bucket math, and quantiles
	// must stay within the observed range.
	var h Histogram
	top := uint64(math.MaxUint64)
	h.Observe(top)
	h.Observe(top - 1)
	h.Observe(1 << 63)
	if h.Max() != top {
		t.Fatalf("max=%d, want %d", h.Max(), top)
	}
	if h.Min() != 1<<63 {
		t.Fatalf("min=%d, want %d", h.Min(), uint64(1)<<63)
	}
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		got := h.P(q)
		if got < h.Min() || got > h.Max() {
			t.Fatalf("P(%v) = %d outside [%d, %d]", q, got, h.Min(), h.Max())
		}
	}
	if got := h.P(1); got != top {
		t.Fatalf("P(1) = %d, want exact max %d", got, top)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	// Quantiles over a spread of values must be monotone in q, bracket
	// the true extremes, and carry at most one octave of bucket error.
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if got := h.Mean(); got != 500.5 {
		t.Fatalf("mean=%v, want 500.5", got)
	}
	prev := uint64(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		got := h.P(q)
		if got < prev {
			t.Fatalf("P(%v) = %d < previous quantile %d", q, got, prev)
		}
		if got < 1 || got > 1000 {
			t.Fatalf("P(%v) = %d outside observed range", q, got)
		}
		// Log buckets: the estimate is the bucket upper bound, so it can
		// exceed the true quantile by at most 2x.
		true_ := uint64(math.Ceil(q * 1000))
		if true_ == 0 {
			true_ = 1
		}
		if got > 2*true_ {
			t.Fatalf("P(%v) = %d, more than 2x true quantile %d", q, got, true_)
		}
		prev = got
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for v := uint64(1); v <= 100; v++ {
		whole.Observe(v)
		if v%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() {
		t.Fatalf("merged count=%d sum=%d, want %d/%d", a.Count(), a.Sum(), whole.Count(), whole.Sum())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged extremes %d/%d, want %d/%d", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if a.P(q) != whole.P(q) {
			t.Fatalf("P(%v): merged %d, whole %d", q, a.P(q), whole.P(q))
		}
	}
	// Merging empty and nil histograms is a no-op.
	before := a.String()
	a.Merge(&Histogram{})
	a.Merge(nil)
	if a.String() != before {
		t.Fatalf("no-op merges changed state: %q -> %q", before, a.String())
	}
	// Merging into an empty histogram copies extremes.
	var c Histogram
	c.Merge(&whole)
	if c.Min() != whole.Min() || c.Max() != whole.Max() || c.Count() != whole.Count() {
		t.Fatalf("merge into empty: min=%d max=%d count=%d", c.Min(), c.Max(), c.Count())
	}
}

func TestHistogramStringStable(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 16; v++ {
		h.Observe(v)
	}
	s := h.String()
	for _, col := range []string{"n=", "mean=", "p50=", "p90=", "p99=", "p999=", "max="} {
		if !strings.Contains(s, col) {
			t.Fatalf("String() = %q missing column %q", s, col)
		}
	}
	if got, want := len(h.QuantileRow()), len(QuantileHeader("class"))-1; got != want {
		t.Fatalf("QuantileRow has %d cells, header has %d value columns", got, want)
	}
}
