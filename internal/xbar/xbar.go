// Package xbar models the GPC-to-partition interconnect with the paper's
// flipped translation order (§IV-B): L1 and the page tables use CXL (home)
// addresses permanently, and the CXL-to-GPU mapping is resolved at the
// interconnect. Each GPC port carries a 128-entry mapping cache; misses go
// to a control logic that reads the hashed mapping table from device
// memory (4 mappings per 32-byte sector) and triggers page copies for
// non-resident pages. The same control logic owns the 32-entry buffer that
// accumulates fine-grained dirty bits before they reach memory.
package xbar

import (
	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/dram"
	"github.com/salus-sim/salus/internal/pagecache"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

// lruSet is a tiny LRU set of page numbers used for the mapping caches and
// the dirty buffer.
type lruSet struct {
	cap   int
	clock uint64
	m     map[int]uint64
}

func newLRUSet(capacity int) *lruSet {
	return &lruSet{cap: capacity, m: make(map[int]uint64, capacity)}
}

// touch marks page present and returns whether it already was; when the
// set overflows, the least recently used entry is evicted and returned.
func (l *lruSet) touch(page int) (present bool, evicted int, didEvict bool) {
	l.clock++
	if _, ok := l.m[page]; ok {
		l.m[page] = l.clock
		return true, 0, false
	}
	if len(l.m) >= l.cap {
		victim, best := -1, uint64(0)
		for p, t := range l.m {
			if victim < 0 || t < best {
				victim, best = p, t
			}
		}
		delete(l.m, victim)
		evicted, didEvict = victim, true
	}
	l.m[page] = l.clock
	return false, evicted, didEvict
}

func (l *lruSet) drop(page int) { delete(l.m, page) }

// Xbar routes memory requests from GPCs to memory partitions.
type Xbar struct {
	eng    *sim.Engine
	geo    config.Geometry
	device *dram.Memory
	pc     *pagecache.PageCache
	ops    *stats.Ops

	latency   sim.Cycle
	mapCaches []*lruSet // per GPC
	dirtyBuf  *lruSet   // control-logic dirty-bitmask buffer

	// sharers tracks, per home page, which GPC mapping caches were handed
	// the translation, so eviction-time invalidations go only to that
	// subset (§IV-B: "invalidation is sent only to a subset of the mapping
	// caches to reduce generated traffic").
	sharers map[int]uint32
}

// New builds the interconnect for the given number of GPCs.
func New(eng *sim.Engine, cfg config.Config, device *dram.Memory,
	pc *pagecache.PageCache, ops *stats.Ops) *Xbar {
	x := &Xbar{
		eng:      eng,
		geo:      cfg.Geometry,
		device:   device,
		pc:       pc,
		ops:      ops,
		latency:  sim.Cycle(cfg.GPU.XbarLatency),
		dirtyBuf: newLRUSet(cfg.Security.DirtyBufferEntries),
		sharers:  make(map[int]uint32),
	}
	for i := 0; i < cfg.GPU.GPCs(); i++ {
		x.mapCaches = append(x.mapCaches, newLRUSet(cfg.Security.MappingCacheEntries))
	}
	return x
}

// mappingSectorAddr returns the device address of the hashed mapping-table
// sector holding a page's mapping (4 consecutive mappings per 32 B sector,
// interleaved like data).
func (x *Xbar) mappingSectorAddr(page int) uint64 {
	return uint64(page/4) * 32
}

// Request routes one memory access from a GPC. done receives the device
// address once the page is resident and the request has crossed the
// interconnect.
func (x *Xbar) Request(gpc int, homeAddr securemem.HomeAddr, write bool, done func(devAddr securemem.DevAddr)) {
	page := homeAddr.Page(x.geo.PageSize)
	mc := x.mapCaches[gpc%len(x.mapCaches)]

	proceed := func() {
		x.eng.After(x.latency, func() {
			x.pc.Access(homeAddr, write, func(devAddr securemem.DevAddr) {
				if write {
					x.trackDirty(page)
				}
				done(devAddr)
			})
		})
	}

	present, evicted, didEvict := mc.touch(page)
	if didEvict {
		x.sharers[evicted] &^= 1 << uint(gpc%len(x.mapCaches))
	}
	if present {
		x.ops.MappingCacheHits++
		proceed()
		return
	}
	x.ops.MappingCacheMisses++
	x.sharers[page] |= 1 << uint(gpc%len(x.mapCaches))
	// Control logic reads the mapping sector from device memory; mapping
	// cache fills (and silent evictions) follow.
	x.device.Access(x.mappingSectorAddr(page), 32, stats.Mapping, proceed)
}

// Invalidate implements the directed invalidation protocol: when a page
// leaves the device tier, the control logic notifies exactly the GPC
// mapping caches that hold its translation. It returns the number of
// invalidation messages sent.
func (x *Xbar) Invalidate(homePage int) int {
	mask, ok := x.sharers[homePage]
	if !ok || mask == 0 {
		return 0
	}
	n := 0
	for g := 0; g < len(x.mapCaches); g++ {
		if mask&(1<<uint(g)) == 0 {
			continue
		}
		x.mapCaches[g].drop(homePage)
		n++
	}
	delete(x.sharers, homePage)
	x.ops.MappingInvalidations += uint64(n)
	return n
}

// trackDirty records a chunk-granular dirty-bit update through the
// control logic's buffer: buffered pages update for free; a miss reads the
// mapping from memory first, and the LRU spill writes one back.
func (x *Xbar) trackDirty(page int) {
	present, _, evicted := x.dirtyBuf.touch(page)
	if present {
		return
	}
	x.device.Access(x.mappingSectorAddr(page), 32, stats.Mapping, nil)
	if evicted {
		x.device.Access(x.mappingSectorAddr(page), 32, stats.Mapping, nil)
	}
}
