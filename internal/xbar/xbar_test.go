package xbar

import (
	"testing"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/cxlmem"
	"github.com/salus-sim/salus/internal/dram"
	"github.com/salus-sim/salus/internal/pagecache"
	"github.com/salus-sim/salus/internal/secsim"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

type passSec struct{}

func (passSec) Name() string                                             { return "pass" }
func (passSec) OnRead(h secsim.HomeAddr, d secsim.DevAddr, done func())  { done() }
func (passSec) OnWrite(h secsim.HomeAddr, d secsim.DevAddr, done func()) { done() }
func (passSec) OnMigrateIn(p, f int, done func())                        { done() }
func (passSec) OnChunkFill(p, f, c int, done func())                     { done() }
func (passSec) OnEvict(p, f int, dirty, present uint64, done func())     { done() }
func (passSec) FineGrainedWriteback() bool                               { return true }

func testXbar(t *testing.T, mapEntries, dirtyEntries int) (*sim.Engine, *Xbar, *stats.Run) {
	t.Helper()
	eng := sim.NewEngine()
	run := &stats.Run{}
	cfg := config.Default()
	cfg.GPU.NumSMs = 8
	cfg.GPU.SMsPerGPC = 4
	cfg.Security.MappingCacheEntries = mapEntries
	cfg.Security.DirtyBufferEntries = dirtyEntries
	device := dram.New(eng, 4, 32, 50, uint64(cfg.Geometry.ChunkSize), &run.Traffic)
	cxl := cxlmem.New(eng, 32, 1, 200, &run.Traffic)
	pc, err := pagecache.New(eng, cfg.Geometry, device, cxl, passSec{}, &run.Ops, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	return eng, New(eng, cfg, device, pc, &run.Ops), run
}

func TestLRUSet(t *testing.T) {
	l := newLRUSet(2)
	if present, _, _ := l.touch(1); present {
		t.Error("fresh entry present")
	}
	if present, _, _ := l.touch(1); !present {
		t.Error("repeat entry absent")
	}
	l.touch(2)
	l.touch(1) // 1 is MRU
	present, evicted, did := l.touch(3)
	if present || !did || evicted != 2 {
		t.Errorf("touch(3) = (%v,%d,%v), want evict of 2", present, evicted, did)
	}
	l.drop(1)
	if present, _, _ := l.touch(1); present {
		t.Error("dropped entry still present")
	}
}

func TestMissThenHit(t *testing.T) {
	eng, x, run := testXbar(t, 16, 8)
	done := 0
	eng.At(0, func() {
		x.Request(0, 0, false, func(secsim.DevAddr) {
			done++
			x.Request(0, 64, false, func(secsim.DevAddr) { done++ })
		})
	})
	eng.Run(0)
	if done != 2 {
		t.Fatalf("completed %d, want 2", done)
	}
	if run.Ops.MappingCacheMisses != 1 {
		t.Errorf("misses = %d, want 1", run.Ops.MappingCacheMisses)
	}
	if run.Ops.MappingCacheHits != 1 {
		t.Errorf("hits = %d, want 1", run.Ops.MappingCacheHits)
	}
	// The miss read one mapping sector.
	if got := run.Traffic.Bytes(stats.Device, stats.Mapping); got != 32 {
		t.Errorf("mapping traffic = %d, want 32", got)
	}
}

func TestPerGPCCaches(t *testing.T) {
	eng, x, run := testXbar(t, 16, 8)
	done := 0
	eng.At(0, func() {
		x.Request(0, 0, false, func(secsim.DevAddr) {
			// Same page from another GPC: its own cache misses.
			x.Request(1, 0, false, func(secsim.DevAddr) { done++ })
		})
	})
	eng.Run(0)
	if done != 1 {
		t.Fatal("requests incomplete")
	}
	if run.Ops.MappingCacheMisses != 2 {
		t.Errorf("misses = %d, want 2 (per-GPC caches)", run.Ops.MappingCacheMisses)
	}
}

func TestStaleMappingRefetches(t *testing.T) {
	eng, x, run := testXbar(t, 16, 8)
	// Touch 12 pages from GPC 0 with only 8 frames: early pages evict.
	done := 0
	var visit func(pg int)
	visit = func(pg int) {
		if pg >= 12 {
			// Revisit page 0: the mapping cache entry is stale.
			x.Request(0, 0, false, func(secsim.DevAddr) { done++ })
			return
		}
		x.Request(0, secsim.HomeAddr(pg*4096), false, func(secsim.DevAddr) { visit(pg + 1) })
	}
	eng.At(0, func() { visit(0) })
	eng.Run(0)
	if done != 1 {
		t.Fatal("revisit incomplete")
	}
	if run.Ops.PagesMigratedIn < 13 {
		t.Errorf("migrations = %d, want >= 13 (refault after stale mapping)", run.Ops.PagesMigratedIn)
	}
}

func TestDirtyBufferAbsorbsRepeatWrites(t *testing.T) {
	eng, x, run := testXbar(t, 16, 8)
	done := 0
	eng.At(0, func() {
		x.Request(0, 0, true, func(secsim.DevAddr) {
			base := run.Traffic.Bytes(stats.Device, stats.Mapping)
			x.Request(0, 32, true, func(secsim.DevAddr) {
				// Second write to the same page: buffered dirty bit, no
				// extra mapping traffic beyond the first write's fill.
				if got := run.Traffic.Bytes(stats.Device, stats.Mapping); got != base {
					t.Errorf("repeat write added mapping traffic: %d -> %d", base, got)
				}
				done++
			})
		})
	})
	eng.Run(0)
	if done != 1 {
		t.Fatal("writes incomplete")
	}
}

func TestDirtyBufferSpill(t *testing.T) {
	eng, x, run := testXbar(t, 64, 2)
	// Write to 3 pages with a 2-entry dirty buffer: one spill writeback.
	done := 0
	eng.At(0, func() {
		x.Request(0, 0, true, func(secsim.DevAddr) {
			x.Request(0, 4096, true, func(secsim.DevAddr) {
				x.Request(0, 8192, true, func(secsim.DevAddr) { done++ })
			})
		})
	})
	eng.Run(0)
	if done != 1 {
		t.Fatal("writes incomplete")
	}
	// Mapping traffic: 3 misses (route) + 3 dirty fills + 1 spill = 7
	// sector transfers; route misses and dirty fills both count.
	if got := run.Traffic.Bytes(stats.Device, stats.Mapping); got < 7*32 {
		t.Errorf("mapping traffic = %d, want >= 224 (includes one spill)", got)
	}
}

func TestMappingSectorSharing(t *testing.T) {
	_, x, _ := testXbar(t, 16, 8)
	// 4 consecutive pages share one mapping sector.
	if x.mappingSectorAddr(0) != x.mappingSectorAddr(3) {
		t.Error("pages 0-3 should share a mapping sector")
	}
	if x.mappingSectorAddr(3) == x.mappingSectorAddr(4) {
		t.Error("pages 3 and 4 should not share a mapping sector")
	}
}

func TestDirectedInvalidation(t *testing.T) {
	eng, x, run := testXbar(t, 16, 8)
	done := 0
	eng.At(0, func() {
		// GPCs 0 and 1 both fetch page 0's mapping; GPC 0 also fetches
		// page 1's.
		x.Request(0, 0, false, func(secsim.DevAddr) {
			x.Request(1, 0, false, func(secsim.DevAddr) {
				x.Request(0, 4096, false, func(secsim.DevAddr) { done++ })
			})
		})
	})
	eng.Run(0)
	if done != 1 {
		t.Fatal("requests incomplete")
	}
	// Page 0 has two sharers; page 1 has one; page 2 has none.
	if n := x.Invalidate(0); n != 2 {
		t.Errorf("Invalidate(0) = %d, want 2", n)
	}
	if n := x.Invalidate(1); n != 1 {
		t.Errorf("Invalidate(1) = %d, want 1", n)
	}
	if n := x.Invalidate(2); n != 0 {
		t.Errorf("Invalidate(2) = %d, want 0", n)
	}
	// Idempotent: sharer state cleared.
	if n := x.Invalidate(0); n != 0 {
		t.Errorf("second Invalidate(0) = %d, want 0", n)
	}
	if run.Ops.MappingInvalidations != 3 {
		t.Errorf("invalidation messages = %d, want 3", run.Ops.MappingInvalidations)
	}
}

func TestInvalidationForcesRemissAfterEviction(t *testing.T) {
	eng, x, run := testXbar(t, 16, 8)
	done := 0
	eng.At(0, func() {
		x.Request(0, 0, false, func(secsim.DevAddr) {
			x.Invalidate(0) // page evicted: directed invalidation
			// The next access must miss the mapping cache again.
			missesBefore := run.Ops.MappingCacheMisses
			x.Request(0, 0, false, func(secsim.DevAddr) {
				if run.Ops.MappingCacheMisses != missesBefore+1 {
					t.Error("access after invalidation did not miss")
				}
				done++
			})
		})
	})
	eng.Run(0)
	if done != 1 {
		t.Fatal("requests incomplete")
	}
}
