// Package util is a non-core helper package the sim fixture launders a
// clock read through: Stamp itself is legal here, but calling it from a
// core package is not.
package util

import "time"

// Stamp returns a wall-clock timestamp.
func Stamp() int64 { return now() }

func now() int64 { return time.Now().UnixNano() }
