// Package sim is a deterministic-core stand-in (core packages are
// matched by name) carrying planted wall-clock and unseeded-randomness
// uses for the simclock analyzer's golden test.
package sim

import (
	"math/rand"
	"time"

	"github.com/salus-sim/salus/internal/lint/testdata/src/simclock/util"
)

// badNow reads the wall clock directly.
func badNow() int64 { return time.Now().UnixNano() } // want: time.Now

// badSleep waits on the wall clock.
func badSleep() { time.Sleep(time.Millisecond) } // want: time.Sleep

// badGlobalRand draws from the implicitly seeded global source.
func badGlobalRand() int { return rand.Int() } // want: unseeded rand

// badViaHelper reaches the clock through a non-core helper chain; only
// the interprocedural summary sees it.
func badViaHelper() int64 { return util.Stamp() } // want: chain to time.Now

// okSeeded threads an explicitly seeded source; allowed.
func okSeeded(seed int64) int { return rand.New(rand.NewSource(seed)).Int() }

// okSuppressed documents why a clock read is acceptable here.
func okSuppressed() int64 {
	//salus-lint:ignore simclock fixture demonstrating a reasoned suppression
	return time.Now().UnixNano()
}
