// Package suppression carries a salus-lint:ignore with no written
// reason: the comment must be flagged and the underlying finding must
// survive anyway.
package suppression

import "sync"

type box struct {
	mu sync.Mutex
	v  int
}

// Peek tries to hide its unguarded access behind a reasonless ignore.
//
// salus-lint:ignore lockdiscipline
func (b *box) Peek() int { return b.v }
