// Package securemem is a tiny stand-in for the real model API, used by
// the droppederr golden test (the analyzer matches watched packages by
// package name, so the fixture stays self-contained).
package securemem

import (
	"errors"
	"fmt"
)

// ErrIntegrity mirrors the real sentinel: dropping it means ignoring a
// detected attack.
var ErrIntegrity = errors.New("integrity violation")

// ErrNeverWrapped is only ever %v-wrapped below, so the errors.Is check
// against it is dead — the classic %v-instead-of-%w bug.
var ErrNeverWrapped = errors.New("never wrapped")

// ErrWrapped is wrapped with %w; checking it is valid.
var ErrWrapped = errors.New("wrapped")

// ErrReturned is returned bare; identity matching keeps errors.Is valid.
var ErrReturned = errors.New("returned")

// Flush models an error-returning API call.
func Flush() error { return ErrIntegrity }

// System models a method-bearing API.
type System struct{}

// Write models a multi-result call whose last result is an error.
func (System) Write(p []byte) (int, error) { return 0, ErrIntegrity }

// Ping returns no error; discarding its result is fine.
func (System) Ping() int { return 0 }

func caller() {
	var s System

	Flush()       // want: dropped error
	go Flush()    // want: dropped error
	defer Flush() // want: dropped error
	s.Write(nil)  // want: dropped error

	_ = Flush() // explicit discard: no finding
	s.Ping()    // no error result: no finding

	if err := Flush(); err != nil { // handled: no finding
		_ = err
	}
}

func wrapWell() error { return fmt.Errorf("context: %w", ErrWrapped) }

func returnBare() error { return ErrReturned }

// BUG (deliberate): %v strips ErrNeverWrapped from the error chain.
func hideSentinel() error { return fmt.Errorf("context: %v", ErrNeverWrapped) }

func classify(err error) bool {
	if errors.Is(err, ErrNeverWrapped) { // want: dead sentinel check
		return true
	}
	if errors.Is(err, ErrWrapped) { // wrapped with %w: no finding
		return true
	}
	return errors.Is(err, ErrReturned) // returned bare: no finding
}
