// Package ctrwidth contains deliberate counter-width violations for the
// ctrwidth analyzer's golden test. Sector mirrors the shape of the real
// counter blocks in internal/security/counters.
package ctrwidth

const minorMax = 63 // 6-bit minors, as in the conventional model

// Sector is a split-counter block: one major, narrow per-sector minors.
type Sector struct {
	Major  uint32
	Minors [8]uint8
}

// BadMinorInc increments a narrow minor with no width guard: it will
// silently wrap at 256 even though the design width is 6 bits.
func BadMinorInc(s *Sector, i int) {
	s.Minors[i]++ // want: unguarded increment
}

// BadMajorInc bumps the major without resetting the minors — not a
// rollover, just a silent counter jump.
func BadMajorInc(s *Sector) {
	s.Major++ // want: unguarded increment
}

// BadAddAssign takes a stride without a guard.
func BadAddAssign(s *Sector, i int) {
	s.Minors[i] += 2 // want: unguarded add-assign
}

// BadSelfAddition spells the increment long-hand.
func BadSelfAddition(s *Sector) {
	s.Major = s.Major + 1 // want: unguarded self-addition
}

// GoodInc is the real pattern: width guard on the minor, and the major
// bump rides with a wholesale minors reset (the rollover).
func GoodInc(s *Sector, i int) (overflow bool) {
	if s.Minors[i] < minorMax {
		s.Minors[i]++
		return false
	}
	s.Major++
	s.Minors = [8]uint8{}
	return true
}

// GoodCollapse mirrors the eviction-side checkpoint: ranging over the
// minors to inspect them licenses the rollover.
func GoodCollapse(s *Sector) (major uint32, reencrypt bool) {
	for _, m := range s.Minors {
		if m != 0 {
			s.Major++
			s.Minors = [8]uint8{}
			return s.Major, true
		}
	}
	return s.Major, false
}
