package lockdiscipline

import "sync"

// homeStore stands in for the securemem home-tier surface.
type homeStore struct{}

func (homeStore) WriteThrough(addr uint64, data []byte) error { return nil }
func (homeStore) ReadThrough(addr uint64, buf []byte) error   { return nil }
func (homeStore) DrainWritebacks() (int, error)               { return 0, nil }

// WritebackQueue parks dirty frames awaiting link recovery.
type WritebackQueue struct {
	queueMu sync.Mutex
	parked  []int
	home    homeStore
}

// DrainBad issues the home-tier writeback while still holding the queue
// mutex (the deferred Unlock keeps it held to the end of the function):
// a link stall here blocks every reader that only wanted the queue.
func (q *WritebackQueue) DrainBad(data []byte) error {
	q.queueMu.Lock()
	defer q.queueMu.Unlock()
	fi := q.parked[0]
	return q.home.WriteThrough(uint64(fi), data) // want: home-tier call under queue mutex
}

// DrainExplicitBad holds the lock across the call with an explicit unlock
// after it.
func (q *WritebackQueue) DrainExplicitBad(data []byte) error {
	q.queueMu.Lock()
	err := q.home.WriteThrough(0, data) // want: home-tier call under queue mutex
	q.queueMu.Unlock()
	return err
}

// DrainGood copies the queue head under the lock, releases it, and only
// then crosses the link; no finding.
func (q *WritebackQueue) DrainGood(data []byte) error {
	q.queueMu.Lock()
	fi := q.parked[0]
	q.queueMu.Unlock()
	return q.home.WriteThrough(uint64(fi), data)
}

// RequeueGood never crosses the link at all; no finding.
func (q *WritebackQueue) RequeueGood(fi int) {
	q.queueMu.Lock()
	defer q.queueMu.Unlock()
	q.parked = append(q.parked, fi)
}
