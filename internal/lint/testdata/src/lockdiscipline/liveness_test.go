package lockdiscipline

import "sync"

// badUnwrapWhileLive hands out the unsynchronized inner value while a
// goroutine may still be running.
func badUnwrapWhileLive() int {
	c := &Counter{}
	go c.Add()
	return c.Unwrap() // want: Unwrap while goroutines live
}

// okUnwrapAfterWait joins the goroutines first; no finding.
func okUnwrapAfterWait() int {
	c := &Counter{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Add()
	}()
	wg.Wait()
	return c.Unwrap()
}
