// Package lockdiscipline contains deliberate locking violations for the
// lockdiscipline analyzer's golden test.
package lockdiscipline

import "sync"

// Counter guards n with mu.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Add locks correctly; no finding.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Peek reads n without the lock.
func (c *Counter) Peek() int { return c.n } // want: unguarded access

// Unwrap is the documented escape hatch, demonstrated suppressed.
//
// salus-lint:ignore lockdiscipline fixture demonstrating suppression
func (c *Counter) Unwrap() int { return c.n }

// peek is unexported: internal helpers may rely on the caller's lock.
func (c *Counter) peek() int { return c.n }

// Registry uses an RWMutex; RLock counts as acquiring it.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]int
}

// Get read-locks correctly; no finding.
func (r *Registry) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[k]
}

// Put writes the map without any lock.
func (r *Registry) Put(k string, v int) { // want: unguarded access
	r.entries[k] = v
}

// Gauge launders a guarded read through an unexported helper.
type Gauge struct {
	mu sync.Mutex
	v  int
}

// readLocked relies on the caller holding mu.
func (g *Gauge) readLocked() int { return g.v }

// Read acquires the lock before delegating; no finding.
func (g *Gauge) Read() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.readLocked()
}

// Snapshot skips the lock; only the interprocedural summary sees the
// access behind readLocked.
func (g *Gauge) Snapshot() int { return g.readLocked() } // want: via helper
