// Package plaintextflow contains deliberate confidentiality leaks for
// the plaintextflow analyzer's golden test: decrypted buffers flowing
// into the home tier, a stable store, and a link transfer, next to the
// sanctioned decrypt → re-encrypt → write path.
package plaintextflow

// engine stands in for cryptoeng.Engine; the analyzer treats
// DecryptSector/EncryptSector as intrinsics by name.
type engine struct{}

func (engine) DecryptSector(dst, ct []byte, addr, major, minor uint64) error {
	copy(dst, ct)
	return nil
}

func (engine) EncryptSector(dst, pt []byte, addr, major, minor uint64) error {
	copy(dst, pt)
	return nil
}

// StableStore mirrors crash.StableStore: bytes written here land on
// checkpoint media outside the trust boundary.
type StableStore interface {
	Write(p []byte) error
}

// memStore is a concrete StableStore, reached via interface dispatch.
type memStore struct{ buf []byte }

func (m *memStore) Write(p []byte) error {
	m.buf = append(m.buf, p...)
	return nil
}

// cxlLink stands in for the link-layer transport.
type cxlLink struct{}

func (cxlLink) Transfer(p []byte) error { return nil }

// system bundles the two tiers and the sinks.
type system struct {
	eng     engine
	cxlData []byte // home tier: must only ever hold ciphertext
	devData []byte // device tier
	store   StableStore
	lnk     cxlLink
}

// leakDirect decrypts a sector and copies the plaintext straight into
// the home tier.
func (s *system) leakDirect(addr uint64) error {
	pt := make([]byte, 32)
	ct := s.devData[addr : addr+32]
	if err := s.eng.DecryptSector(pt, ct, addr, 1, 0); err != nil {
		return err
	}
	copy(s.cxlData[addr:addr+32], pt) // want: plaintext home write
	return nil
}

// writeHome is the helper a leak launders through.
func (s *system) writeHome(addr uint64, b []byte) {
	copy(s.cxlData[addr:addr+32], b)
}

// leakViaHelper reaches the home tier through writeHome: only the
// interprocedural summary sees it.
func (s *system) leakViaHelper(addr uint64) error {
	pt := make([]byte, 32)
	if err := s.eng.DecryptSector(pt, s.devData[addr:addr+32], addr, 1, 0); err != nil {
		return err
	}
	s.writeHome(addr, pt) // want: plaintext home write via helper
	return nil
}

// decryptInto wraps the decrypt path: its dst parameter comes back
// plaintext, which the summary records as a source.
func (s *system) decryptInto(dst []byte, addr uint64) error {
	return s.eng.DecryptSector(dst, s.devData[addr:addr+32], addr, 1, 0)
}

// leakToJournal appends decrypted bytes to the stable store through the
// interface.
func (s *system) leakToJournal(addr uint64) error {
	pt := make([]byte, 32)
	if err := s.decryptInto(pt, addr); err != nil {
		return err
	}
	return s.store.Write(pt) // want: plaintext stable-store write
}

// leakToLink ships decrypted bytes over the link.
func (s *system) leakToLink(addr uint64) error {
	pt := make([]byte, 32)
	if err := s.decryptInto(pt, addr); err != nil {
		return err
	}
	return s.lnk.Transfer(pt) // want: plaintext link transfer
}

// sealedWriteback is the sanctioned path: decrypt, re-encrypt, then
// write; no finding.
func (s *system) sealedWriteback(addr uint64) error {
	pt := make([]byte, 32)
	if err := s.decryptInto(pt, addr); err != nil {
		return err
	}
	ct := s.cxlData[addr : addr+32]
	if err := s.eng.EncryptSector(ct, pt, addr, 2, 0); err != nil {
		return err
	}
	return s.store.Write(ct)
}

// suppressedLeak demonstrates a reasoned suppression.
func (s *system) suppressedLeak(addr uint64) error {
	pt := make([]byte, 32)
	if err := s.decryptInto(pt, addr); err != nil {
		return err
	}
	//salus-lint:ignore plaintextflow fixture demonstrating a reasoned suppression
	copy(s.cxlData[addr:addr+32], pt)
	return nil
}
