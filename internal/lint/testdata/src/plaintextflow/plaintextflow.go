// Package plaintextflow contains deliberate confidentiality leaks for
// the plaintextflow analyzer's golden test: decrypted buffers flowing
// into the home tier, a stable store, and a link transfer, next to the
// sanctioned decrypt → re-encrypt → write path.
package plaintextflow

// engine stands in for cryptoeng.Engine; the analyzer treats
// DecryptSector/EncryptSector as intrinsics by name.
type engine struct{}

func (engine) DecryptSector(dst, ct []byte, addr, major, minor uint64) error {
	copy(dst, ct)
	return nil
}

func (engine) EncryptSector(dst, pt []byte, addr, major, minor uint64) error {
	copy(dst, pt)
	return nil
}

// StableStore mirrors crash.StableStore: bytes written here land on
// checkpoint media outside the trust boundary.
type StableStore interface {
	Write(p []byte) error
}

// memStore is a concrete StableStore, reached via interface dispatch.
type memStore struct{ buf []byte }

func (m *memStore) Write(p []byte) error {
	m.buf = append(m.buf, p...)
	return nil
}

// cxlLink stands in for the link-layer transport.
type cxlLink struct{}

func (cxlLink) Transfer(p []byte) error { return nil }

// system bundles the two tiers and the sinks.
type system struct {
	eng     engine
	cxlData []byte // home tier: must only ever hold ciphertext
	devData []byte // device tier
	store   StableStore
	lnk     cxlLink
}

// leakDirect decrypts a sector and copies the plaintext straight into
// the home tier.
func (s *system) leakDirect(addr uint64) error {
	pt := make([]byte, 32)
	ct := s.devData[addr : addr+32]
	if err := s.eng.DecryptSector(pt, ct, addr, 1, 0); err != nil {
		return err
	}
	copy(s.cxlData[addr:addr+32], pt) // want: plaintext home write
	return nil
}

// writeHome is the helper a leak launders through.
func (s *system) writeHome(addr uint64, b []byte) {
	copy(s.cxlData[addr:addr+32], b)
}

// leakViaHelper reaches the home tier through writeHome: only the
// interprocedural summary sees it.
func (s *system) leakViaHelper(addr uint64) error {
	pt := make([]byte, 32)
	if err := s.eng.DecryptSector(pt, s.devData[addr:addr+32], addr, 1, 0); err != nil {
		return err
	}
	s.writeHome(addr, pt) // want: plaintext home write via helper
	return nil
}

// decryptInto wraps the decrypt path: its dst parameter comes back
// plaintext, which the summary records as a source.
func (s *system) decryptInto(dst []byte, addr uint64) error {
	return s.eng.DecryptSector(dst, s.devData[addr:addr+32], addr, 1, 0)
}

// leakToJournal appends decrypted bytes to the stable store through the
// interface.
func (s *system) leakToJournal(addr uint64) error {
	pt := make([]byte, 32)
	if err := s.decryptInto(pt, addr); err != nil {
		return err
	}
	return s.store.Write(pt) // want: plaintext stable-store write
}

// leakToLink ships decrypted bytes over the link.
func (s *system) leakToLink(addr uint64) error {
	pt := make([]byte, 32)
	if err := s.decryptInto(pt, addr); err != nil {
		return err
	}
	return s.lnk.Transfer(pt) // want: plaintext link transfer
}

// sealedWriteback is the sanctioned path: decrypt, re-encrypt, then
// write; no finding.
func (s *system) sealedWriteback(addr uint64) error {
	pt := make([]byte, 32)
	if err := s.decryptInto(pt, addr); err != nil {
		return err
	}
	ct := s.cxlData[addr : addr+32]
	if err := s.eng.EncryptSector(ct, pt, addr, 2, 0); err != nil {
		return err
	}
	return s.store.Write(ct)
}

// tenantPool models a multi-tenant pool: one shared home-tier backing
// carved into per-tenant windows, each window owning its own key
// domain. Plaintext decrypted under one tenant's keys must never be
// copied into another tenant's window — that is a confidentiality leak
// across the isolation boundary even though both windows are "ours".
type tenantPool struct {
	engA    engine
	engB    engine
	poolCXL []byte // shared home backing; windows are subslices
	devData []byte
}

// leakAcrossTenant decrypts a sector under tenant A's keys and copies
// the plaintext into tenant B's home window (a local alias of the
// shared backing).
func (p *tenantPool) leakAcrossTenant(addr uint64) error {
	winB := p.poolCXL[4096:8192] // tenant B's window aliases the home tier
	pt := make([]byte, 32)
	ct := p.devData[addr : addr+32]
	if err := p.engA.DecryptSector(pt, ct, addr, 1, 0); err != nil {
		return err
	}
	copy(winB[:32], pt) // want: cross-tenant plaintext home write
	return nil
}

// migrateSealed is the sanctioned cross-tenant move: decrypt under A,
// re-encrypt under B's keys, then land in B's window; no finding.
func (p *tenantPool) migrateSealed(addr uint64) error {
	winB := p.poolCXL[4096:8192]
	pt := make([]byte, 32)
	if err := p.engA.DecryptSector(pt, p.devData[addr:addr+32], addr, 1, 0); err != nil {
		return err
	}
	return p.engB.EncryptSector(winB[:32], pt, addr, 1, 0)
}

// suppressedLeak demonstrates a reasoned suppression.
func (s *system) suppressedLeak(addr uint64) error {
	pt := make([]byte, 32)
	if err := s.decryptInto(pt, addr); err != nil {
		return err
	}
	//salus-lint:ignore plaintextflow fixture demonstrating a reasoned suppression
	copy(s.cxlData[addr:addr+32], pt)
	return nil
}
