// Package lockorder contains a seeded two-lock ordering cycle for the
// lockorder analyzer's golden test, with one edge laundered through a
// helper so only the interprocedural summary sees it.
package lockorder

import "sync"

// shards carries the ABBA pair.
type shards struct {
	muA sync.Mutex
	muB sync.Mutex
	a   int
	b   int
}

// lockB acquires muB on its own; the A -> B edge goes through here.
func (s *shards) lockB() {
	s.muB.Lock()
	s.b++
	s.muB.Unlock()
}

// abPath acquires muB (via lockB) while muA is held: edge muA -> muB.
func (s *shards) abPath() {
	s.muA.Lock()
	defer s.muA.Unlock()
	s.lockB() // want: cycle edge, via helper
}

// baPath acquires muA while muB is held: edge muB -> muA closes the cycle.
func (s *shards) baPath() {
	s.muB.Lock()
	defer s.muB.Unlock()
	s.muA.Lock() // want: cycle edge
	s.a++
	s.muA.Unlock()
}

// pool carries a second inverted pair whose back edge is suppressed with
// a written reason; the forward edge still reports.
type pool struct {
	muC sync.Mutex
	muD sync.Mutex
	c   int
	d   int
}

func (p *pool) cdPath() {
	p.muC.Lock()
	defer p.muC.Unlock()
	p.muD.Lock() // want: cycle edge (the other half is suppressed)
	p.d++
	p.muD.Unlock()
}

func (p *pool) dcPath() {
	p.muD.Lock()
	defer p.muD.Unlock()
	//salus-lint:ignore lockorder fixture demonstrating a reasoned suppression
	p.muC.Lock()
	p.c++
	p.muC.Unlock()
}

// orderedOnly acquires in one global order everywhere; no finding.
type orderedOnly struct {
	muX sync.Mutex
	muY sync.Mutex
	x   int
}

func (o *orderedOnly) both() {
	o.muX.Lock()
	defer o.muX.Unlock()
	o.muY.Lock()
	o.x++
	o.muY.Unlock()
}
