// Package addrdomain contains deliberate address-domain violations for
// the addrdomain analyzer's golden test. The local HomeAddr/DevAddr
// types stand in for securemem's (matching is by type name).
package addrdomain

// HomeAddr mirrors securemem.HomeAddr.
type HomeAddr uint64

// DevAddr mirrors securemem.DevAddr.
type DevAddr uint64

// BadHomeToDev crosses domains with an explicit conversion.
func BadHomeToDev(h HomeAddr) DevAddr {
	return DevAddr(h) // want: cross-domain conversion
}

// BadDevToHome crosses the other way.
func BadDevToHome(d DevAddr) HomeAddr {
	return HomeAddr(d) // want: cross-domain conversion
}

// OKThroughUint64 uses the sanctioned escape hatch: leaving the typed
// world explicitly via uint64.
func OKThroughUint64(h HomeAddr) DevAddr {
	return DevAddr(uint64(h))
}

// legacyLookup models a not-yet-migrated API keyed by home address.
func legacyLookup(homeAddr uint64) uint64 { return homeAddr }

// BadNameCall passes a device-named bare integer where a home-named
// parameter is expected.
func BadNameCall() uint64 {
	devAddr := uint64(42)
	return legacyLookup(devAddr) // want: naming-convention warning
}

// BadNameAssign cross-assigns bare integers with conflicting names.
func BadNameAssign() uint64 {
	var homeAddr uint64
	devAddr := uint64(7)
	homeAddr = devAddr // want: naming-convention warning
	return homeAddr
}

// OKSameDomain passes matching names; no finding.
func OKSameDomain() uint64 {
	homeAddr := uint64(1)
	return legacyLookup(homeAddr)
}
