package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PlaintextFlow machine-checks the Salus confidentiality invariant: data
// leaving the trusted GPU boundary is always ciphertext. Concretely, a
// buffer that received the output of the decrypt path (DecryptSector) is
// *plaintext*, and plaintext must never flow into
//
//   - a home-tier write (the CXL store — any []byte field whose name
//     names the cxl/home tier, or a local aliasing one),
//   - a stable-store append (crash.StableStore implementations and the
//     crash journal — checkpoint media are outside the trust boundary),
//   - a link transfer (anything shipped over the CXL transport model),
//
// unless it first passes back through the seal path (EncryptSector).
// The analysis is an interprocedural taint propagation over the call
// graph: each function gets a summary describing which buffer arguments
// it taints (decrypt wrappers), which tainted arguments reach a sink
// inside it (laundering helpers), and whether its result carries taint.
// Summaries are computed to fixpoint, so a plaintext buffer laundered
// through any chain of helpers is still caught at the call site where
// the tainted buffer enters the chain.
//
// ModelNone stores plaintext by design; it never calls the decrypt path,
// so the taint source definition keeps it out of scope automatically.
type PlaintextFlow struct{}

// Name implements Analyzer.
func (PlaintextFlow) Name() string { return "plaintextflow" }

// Doc implements Analyzer.
func (PlaintextFlow) Doc() string {
	return "flags decrypted (plaintext) buffers flowing into home-tier writes, stable-store appends, or link transfers without re-encryption"
}

// pfTaint is the taint lattice element for one buffer: src means "holds
// DecryptSector output"; params is a bitmask of function parameters whose
// incoming taint the buffer inherits (used while summarizing).
type pfTaint struct {
	src    bool
	params uint64
}

func (t pfTaint) zero() bool           { return !t.src && t.params == 0 }
func (t pfTaint) or(u pfTaint) pfTaint { return pfTaint{t.src || u.src, t.params | u.params} }

// pfSummary is a function's externally visible taint behaviour. Slot 0 is
// the receiver for methods; parameters follow in order.
type pfSummary struct {
	// paramOut[i] is the taint a call adds to the buffer passed in slot
	// i, expressed over the caller's arguments (src = unconditional
	// plaintext, params bit j = "inherits the taint of slot j").
	paramOut map[int]pfTaint
	// sink[i] names the sink a tainted slot-i argument reaches inside
	// the function ("" = none).
	sink map[int]string
	// result is the taint of the first result when it is a []byte.
	result pfTaint
}

func newPFSummary() *pfSummary {
	return &pfSummary{paramOut: map[int]pfTaint{}, sink: map[int]string{}}
}

// merge folds o into s monotonically, reporting whether s grew.
func (s *pfSummary) merge(o *pfSummary) bool {
	changed := false
	for i, t := range o.paramOut {
		if n := s.paramOut[i].or(t); n != s.paramOut[i] {
			s.paramOut[i] = n
			changed = true
		}
	}
	for i, k := range o.sink {
		if k != "" && s.sink[i] == "" {
			s.sink[i] = k
			changed = true
		}
	}
	if n := s.result.or(o.result); n != s.result {
		s.result = n
		changed = true
	}
	return changed
}

// Sink kind names used in findings.
const (
	pfSinkHome   = "home-tier write"
	pfSinkStable = "stable-store write"
	pfSinkLink   = "link transfer"
)

// RunProgram implements ProgramAnalyzer.
func (a PlaintextFlow) RunProgram(prog *Program) []Finding {
	summaries := map[string]*pfSummary{}
	prog.Fixpoint(func(fn *FuncNode) bool {
		cur := a.analyze(prog, fn, summaries, nil)
		old := summaries[fn.FullName()]
		if old == nil {
			summaries[fn.FullName()] = cur
			return len(cur.paramOut) > 0 || len(cur.sink) > 0 || !cur.result.zero()
		}
		return old.merge(cur)
	})
	var out []Finding
	for _, fn := range prog.Functions() {
		a.analyze(prog, fn, summaries, func(f Finding) { out = append(out, f) })
	}
	return out
}

// pfIntrinsic returns the built-in summary of the crypto engine entry
// points, keyed by method name: DecryptSector produces plaintext in its
// first argument; EncryptSector is the seal path (its first argument
// comes back ciphertext, and consuming plaintext through its second is
// the sanctioned flow). Their bodies are never analyzed — the taint
// semantics are their *role*, not their implementation.
func pfIntrinsic(fn *types.Func) (*pfSummary, bool) {
	switch fn.Name() {
	case "DecryptSector":
		s := newPFSummary()
		s.paramOut[1] = pfTaint{src: true} // slot 0 = receiver
		return s, true
	case "EncryptSector":
		return newPFSummary(), true
	}
	return nil, false
}

// pfSinkOf classifies a callee as a taint sink: the returned map gives
// the sink kind per argument slot (every []byte parameter of a matching
// callee is a sink).
func pfSinkOf(fn *types.Func) string {
	recv := recvTypeName(fn)
	switch {
	case recv == "StableStore", packageNameOf(fn) == "crash":
		// StableStore.Write / Journal.Append and friends: bytes handed
		// here land on checkpoint media outside the trust boundary.
		if fn.Name() == "Write" || fn.Name() == "Append" {
			return pfSinkStable
		}
	case packageNameOf(fn) == "link" || containsFold(recv, "link"):
		// Payload-carrying transfers over the CXL transport model.
		if fn.Name() == "Transfer" || fn.Name() == "Send" {
			return pfSinkLink
		}
	}
	return ""
}

// pfState is the per-function abstract state of one analysis pass.
type pfState struct {
	prog      *Program
	fn        *FuncNode
	summaries map[string]*pfSummary
	emit      func(Finding)

	slots     map[types.Object]int // param/receiver object -> slot index
	tt        map[types.Object]pfTaint
	homeAlias map[types.Object]bool
	sites     map[*ast.CallExpr]*CallSite
	cur       *pfSummary
}

// analyze runs the intraprocedural taint pass over fn under the current
// summaries, returning fn's own summary. When emit is non-nil, concrete
// findings (src-tainted data reaching a sink) are reported.
func (a PlaintextFlow) analyze(prog *Program, fn *FuncNode, summaries map[string]*pfSummary, emit func(Finding)) *pfSummary {
	if s, ok := pfIntrinsic(fn.Obj); ok {
		return s
	}
	st := &pfState{
		prog:      prog,
		fn:        fn,
		summaries: summaries,
		emit:      emit,
		slots:     map[types.Object]int{},
		tt:        map[types.Object]pfTaint{},
		homeAlias: map[types.Object]bool{},
		sites:     map[*ast.CallExpr]*CallSite{},
		cur:       newPFSummary(),
	}
	for _, site := range fn.Calls {
		st.sites[site.Call] = site
	}
	// Seed parameter slots. Slot 0 is the receiver for methods.
	slot := 0
	seed := func(fields []*ast.Field) {
		for _, f := range fields {
			if len(f.Names) == 0 {
				slot++
				continue
			}
			for _, name := range f.Names {
				obj := fn.Pkg.Info.Defs[name]
				if obj != nil && slot < 64 {
					st.slots[obj] = slot
					if isByteSlice(obj.Type()) {
						st.tt[obj] = pfTaint{params: 1 << uint(slot)}
					}
				}
				slot++
			}
		}
	}
	if fn.Decl.Recv != nil {
		seed(fn.Decl.Recv.List)
	}
	seed(fn.Decl.Type.Params.List)

	// Two passes approximate loop-carried taint: source order first, then
	// once more with the first pass's facts in place. Findings are only
	// emitted on the last pass.
	st.walk(fn.Decl.Body, false)
	st.walk(fn.Decl.Body, emit != nil)

	// Fold final parameter taint into the summary (minus each
	// parameter's own incoming bit, which is the identity flow).
	for obj, s := range st.slots {
		t := st.tt[obj]
		t.params &^= 1 << uint(s)
		if !t.zero() {
			st.cur.paramOut[s] = st.cur.paramOut[s].or(t)
		}
	}
	return st.cur
}

// walk visits the body in source order, interpreting assignments, copies,
// appends, calls, and returns.
func (st *pfState) walk(body ast.Node, emitting bool) {
	savedEmit := st.emit
	if !emitting {
		st.emit = nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.assign(n)
		case *ast.CallExpr:
			st.call(n)
		case *ast.ReturnStmt:
			st.ret(n)
		}
		return true
	})
	st.emit = savedEmit
}

// assign propagates taint and home-aliasing through an assignment.
func (st *pfState) assign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		// Tuple assignment from a call: only the first result can be a
		// tracked buffer.
		if len(n.Rhs) == 1 {
			if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
				if t := st.resultTaint(call); !t.zero() {
					st.taintTarget(n.Lhs[0], t, n)
				}
			}
		}
		return
	}
	for i := range n.Lhs {
		rhs := n.Rhs[i]
		if st.isHomeExpr(rhs) {
			if obj := baseIdentObj(st.fn.Pkg, n.Lhs[i]); obj != nil {
				st.homeAlias[obj] = true
			}
		}
		if t := st.exprTaint(rhs); !t.zero() {
			st.taintTarget(n.Lhs[i], t, n)
		}
	}
}

// taintTarget applies taint to an assignment/copy destination: a home
// expression is a sink; anything rooted at an identifier accumulates.
func (st *pfState) taintTarget(dst ast.Expr, t pfTaint, at ast.Node) {
	if st.isHomeExpr(dst) {
		st.sinkHit(pfSinkHome, t, at, dst)
		return
	}
	if obj := baseIdentObj(st.fn.Pkg, dst); obj != nil {
		st.tt[obj] = st.tt[obj].or(t)
	}
}

// sinkHit records tainted data reaching a sink: src taint is a concrete
// finding; parameter taint marks the enclosing function as a laundering
// helper for those slots.
func (st *pfState) sinkHit(kind string, t pfTaint, at ast.Node, what ast.Expr) {
	if t.src && st.emit != nil {
		st.emit(Finding{
			Pos:      st.fn.posOf(at),
			Analyzer: PlaintextFlow{}.Name(),
			Severity: Error,
			Message: fmt.Sprintf("plaintext (decrypted) data reaches a %s through %s without passing the seal/encrypt path",
				kind, exprString(what)),
		})
	}
	for s := 0; s < 64; s++ {
		if t.params&(1<<uint(s)) != 0 && st.cur.sink[s] == "" {
			st.cur.sink[s] = kind
		}
	}
}

// call interprets one call expression for its side effects on the state.
func (st *pfState) call(call *ast.CallExpr) {
	// Builtins: copy moves taint (or hits the home sink); append is
	// handled as an expression by exprTaint.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := st.fn.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "copy" && len(call.Args) == 2 {
			t := st.exprTaint(call.Args[1])
			if !t.zero() {
				st.taintTarget(call.Args[0], t, call)
			}
			return
		}
	}
	site := st.sites[call]
	if site == nil || site.Callee == nil {
		return
	}
	callee := site.Callee
	args := st.alignArgs(call, callee)

	// Intrinsics: the decrypt source and the encrypt seal.
	if sum, ok := pfIntrinsic(callee); ok {
		if callee.Name() == "EncryptSector" && len(args) > 1 && len(args[1]) > 0 {
			// The first argument comes back ciphertext: clear its taint.
			// (Writing ciphertext into a home alias is the sanctioned
			// writeback, so no sink check on slot 0 here.)
			if obj := baseIdentObj(st.fn.Pkg, args[1][0]); obj != nil {
				delete(st.tt, obj)
			}
			return
		}
		st.applySummary(sum, args, call, callee)
		return
	}

	// Direct sink callees (StableStore writes, journal appends, link
	// transfers): every []byte argument is sunk.
	if kind := pfSinkOf(callee); kind != "" {
		for _, exprs := range args {
			for _, e := range exprs {
				tv, ok := st.fn.Pkg.Info.Types[e]
				if !ok || !isByteSlice(tv.Type) {
					continue
				}
				if t := st.exprTaint(e); !t.zero() {
					st.sinkHit(kind, t, call, e)
				}
			}
		}
		// A sink callee may also be module-internal; fall through so its
		// own summary (if any) still applies.
	}

	for _, target := range site.Targets {
		if sum := st.summaries[target.FullName()]; sum != nil {
			st.applySummary(sum, args, call, callee)
		}
	}
}

// alignArgs maps a call's receiver and arguments onto the callee's
// parameter slots. Extra variadic arguments fold into the last slot.
func (st *pfState) alignArgs(call *ast.CallExpr, callee *types.Func) map[int][]ast.Expr {
	out := map[int][]ast.Expr{}
	slot := 0
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			out[0] = []ast.Expr{sel.X}
		}
		slot = 1
	}
	nparams := 0
	if sig != nil {
		nparams = sig.Params().Len()
	}
	last := slot + nparams - 1
	for i, arg := range call.Args {
		s := slot + i
		if last >= slot && s > last {
			s = last
		}
		out[s] = append(out[s], arg)
	}
	return out
}

// applySummary replays a callee summary at a call site: out-taints flow
// into argument buffers, sink parameters check their arguments.
func (st *pfState) applySummary(sum *pfSummary, args map[int][]ast.Expr, call *ast.CallExpr, callee *types.Func) {
	argTaint := func(slot int) pfTaint {
		var t pfTaint
		for _, e := range args[slot] {
			t = t.or(st.exprTaint(e))
		}
		return t
	}
	for slot, out := range sum.paramOut {
		t := pfTaint{src: out.src}
		for s := 0; s < 64; s++ {
			if out.params&(1<<uint(s)) != 0 {
				t = t.or(argTaint(s))
			}
		}
		if t.zero() {
			continue
		}
		for _, e := range args[slot] {
			st.taintTarget(e, t, call)
		}
	}
	for slot, kind := range sum.sink {
		if kind == "" {
			continue
		}
		if t := argTaint(slot); !t.zero() {
			if t.src && st.emit != nil {
				var what ast.Expr = call
				if len(args[slot]) > 0 {
					what = args[slot][0]
				}
				st.emit(Finding{
					Pos:      st.fn.posOf(call),
					Analyzer: PlaintextFlow{}.Name(),
					Severity: Error,
					Message: fmt.Sprintf("plaintext (decrypted) buffer %s flows into a %s via %s without passing the seal/encrypt path",
						exprString(what), kind, shortFuncName(callee)),
				})
			}
			for s := 0; s < 64; s++ {
				if t.params&(1<<uint(s)) != 0 && st.cur.sink[s] == "" {
					st.cur.sink[s] = kind
				}
			}
		}
	}
}

// ret folds returned buffer taint into the summary.
func (st *pfState) ret(n *ast.ReturnStmt) {
	if len(n.Results) == 0 {
		return
	}
	sig, _ := st.fn.Obj.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() == 0 || !isByteSlice(sig.Results().At(0).Type()) {
		return
	}
	st.cur.result = st.cur.result.or(st.exprTaint(n.Results[0]))
}

// exprTaint evaluates the taint of an expression.
func (st *pfState) exprTaint(e ast.Expr) pfTaint {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := baseIdentObj(st.fn.Pkg, e); obj != nil {
			return st.tt[obj]
		}
	case *ast.SliceExpr:
		return st.exprTaint(e.X)
	case *ast.IndexExpr:
		return st.exprTaint(e.X)
	case *ast.ParenExpr:
		return st.exprTaint(e.X)
	case *ast.StarExpr:
		return st.exprTaint(e.X)
	case *ast.CallExpr:
		return st.resultTaint(e)
	}
	return pfTaint{}
}

// resultTaint evaluates the taint of a call's first result.
func (st *pfState) resultTaint(call *ast.CallExpr) pfTaint {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := st.fn.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
			var t pfTaint
			for _, arg := range call.Args {
				t = t.or(st.exprTaint(arg))
			}
			return t
		}
	}
	site := st.sites[call]
	if site == nil || site.Callee == nil {
		return pfTaint{}
	}
	args := st.alignArgs(call, site.Callee)
	var t pfTaint
	for _, target := range site.Targets {
		sum := st.summaries[target.FullName()]
		if sum == nil || sum.result.zero() {
			continue
		}
		if sum.result.src {
			t.src = true
		}
		for s := 0; s < 64; s++ {
			if sum.result.params&(1<<uint(s)) != 0 {
				for _, e := range args[s] {
					t = t.or(st.exprTaint(e))
				}
			}
		}
	}
	return t
}

// isHomeExpr reports whether e denotes (a slice of) the home-tier store:
// a []byte struct field whose name names the cxl/home tier, or a local
// variable that aliases one.
func (st *pfState) isHomeExpr(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			obj := st.fn.Pkg.Info.ObjectOf(x.Sel)
			if v, ok := obj.(*types.Var); ok && v.IsField() && isByteSlice(v.Type()) &&
				(containsFold(v.Name(), "cxl") || containsFold(v.Name(), "home")) {
				return true
			}
			return false
		case *ast.Ident:
			obj := st.fn.Pkg.Info.ObjectOf(x)
			return obj != nil && st.homeAlias[obj]
		default:
			return false
		}
	}
}
