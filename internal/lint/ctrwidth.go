package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// CtrWidth is the paper-specific analyzer: minor counters are narrow by
// design (6-bit conventional, 8-bit IF-group, 16-bit CXL-split minors,
// §IV-A1/2), so every increment must either be range-guarded against the
// width limit or live next to the overflow rollover (major increment +
// minors reset + re-encryption). An unguarded `x.Minor++` eventually
// wraps silently, which in counter-mode encryption means IV reuse.
//
// The analyzer flags ++/+=/x = x + k on fields named Major/Majors/
// Minor/Minors unless the enclosing function shows overflow awareness:
// a comparison involving the same field (the `minors[i] < Max` guard),
// or — for major bumps — a reset assignment of the minors in the same
// function (the rollover itself).
type CtrWidth struct{}

// Name implements Analyzer.
func (CtrWidth) Name() string { return "ctrwidth" }

// Doc implements Analyzer.
func (CtrWidth) Doc() string {
	return "flags arithmetic on minor/major counter fields without a width guard or rollover"
}

// counterFieldName returns the counter field name ("Major", "Minors", …)
// referenced by an lvalue expression, or "".
func counterFieldName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			switch x.Sel.Name {
			case "Major", "Majors", "Minor", "Minors":
				return x.Sel.Name
			}
			return ""
		default:
			return ""
		}
	}
}

// isMinorName reports whether a counter field name is a minor.
func isMinorName(name string) bool { return strings.HasPrefix(name, "Minor") }

// Run implements Analyzer.
func (a CtrWidth) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, a.checkFunc(pkg, fn)...)
		}
	}
	return out
}

// checkFunc scans one function for unguarded counter increments.
func (a CtrWidth) checkFunc(pkg *Package, fn *ast.FuncDecl) []Finding {
	guardedFields := map[string]bool{} // fields compared somewhere in fn
	minorsReset := false               // fn resets a minor field wholesale

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				if name := counterFieldName(n.X); name != "" {
					guardedFields[name] = true
				}
				if name := counterFieldName(n.Y); name != "" {
					guardedFields[name] = true
				}
			}
		case *ast.AssignStmt:
			// A wholesale reset like `s.Minors = [N]uint8{}` (or = 0 for a
			// scalar minor) is the rollover that licenses a major bump.
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					name := counterFieldName(n.Lhs[i])
					if name == "" || !isMinorName(name) {
						continue
					}
					if isZeroValue(n.Rhs[i]) {
						minorsReset = true
					}
				}
			}
		case *ast.RangeStmt:
			// Ranging over the minors to test for non-zero entries (the
			// Collapse pattern) counts as inspecting them.
			if name := counterFieldName(n.X); name != "" {
				guardedFields[name] = true
			}
		}
		return true
	})

	var out []Finding
	flag := func(pos token.Pos, field string, form string) {
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: a.Name(),
			Severity: Error,
			Message: fmt.Sprintf("%s on counter field %q without a width guard or overflow rollover in %s",
				form, field, fn.Name.Name),
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if n.Tok != token.INC {
				return true
			}
			if field := counterFieldName(n.X); field != "" && !a.licensed(field, guardedFields, minorsReset) {
				flag(n.Pos(), field, "increment")
			}
		case *ast.AssignStmt:
			for i := range n.Lhs {
				field := counterFieldName(n.Lhs[i])
				if field == "" {
					continue
				}
				switch {
				case n.Tok == token.ADD_ASSIGN:
					if !a.licensed(field, guardedFields, minorsReset) {
						flag(n.Pos(), field, "add-assign")
					}
				case n.Tok == token.ASSIGN && i < len(n.Rhs) && isSelfAddition(n.Rhs[i], field):
					if !a.licensed(field, guardedFields, minorsReset) {
						flag(n.Pos(), field, "self-addition")
					}
				}
			}
		}
		return true
	})
	return out
}

// licensed reports whether an increment of field is overflow-aware in its
// function: the field itself is guarded by a comparison, or (for majors)
// the minors are reset alongside the bump.
func (CtrWidth) licensed(field string, guardedFields map[string]bool, minorsReset bool) bool {
	if guardedFields[field] {
		return true
	}
	if !isMinorName(field) && minorsReset {
		return true
	}
	return false
}

// isZeroValue matches composite literals with no elements and literal 0.
func isZeroValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.BasicLit:
		return e.Value == "0"
	}
	return false
}

// isSelfAddition matches `<field-expr> + k` where the left side names the
// same counter field.
func isSelfAddition(e ast.Expr, field string) bool {
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != token.ADD {
		return false
	}
	return counterFieldName(b.X) == field || counterFieldName(b.Y) == field
}
