package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockDiscipline enforces the locking convention of mutex-bearing types:
// an exported method on a struct that embeds a sync.Mutex/RWMutex must
// acquire that mutex before touching any sibling field. The check is
// interprocedural: an exported method that launders the access through
// an unexported helper (which, per convention, relies on the caller's
// lock) is flagged at the exported entry point, with the helper chain in
// the message. It also watches the known escape hatch pattern in tests —
// calling an Unwrap-style method (which hands out the unsynchronized
// inner value) while spawned goroutines may still be running — and flags
// home-tier operations issued while a writeback-queue mutex is held: the
// home tier sits across the CXL link, whose transfers can stall in
// retry/backoff or an outage, and a queue lock held across that stall
// starves every device-resident access that only wanted the queue.
type LockDiscipline struct{}

// Name implements Analyzer.
func (LockDiscipline) Name() string { return "lockdiscipline" }

// Doc implements Analyzer.
func (LockDiscipline) Doc() string {
	return "flags exported methods touching mutex-guarded fields without locking (directly or via helpers), and Unwrap while goroutines are live"
}

// RunProgram implements ProgramAnalyzer.
func (a LockDiscipline) RunProgram(prog *Program) []Finding {
	guarded := map[string]*guardedType{}
	for _, pkg := range prog.Packages {
		for named, g := range a.guardedTypes(pkg) {
			guarded[typeKey(named)] = g
		}
	}
	out := a.checkMethods(prog, guarded)
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			isTest := strings.HasSuffix(pkg.Fset.Position(file.Pos()).Filename, "_test.go")
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				out = append(out, a.checkQueueMutexHomeCalls(pkg, fn)...)
				if isTest {
					out = append(out, a.checkUnwrapLiveness(pkg, fn)...)
				}
			}
		}
	}
	return out
}

// guardedType records a struct carrying one or more mutex fields.
type guardedType struct {
	mutexFields map[string]bool // field names of sync.Mutex / sync.RWMutex
	dataFields  map[string]bool // every other field: guarded by convention
}

// typeKey names a named type across package loads.
func typeKey(named *types.Named) string {
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// guardedTypes finds the package's mutex-bearing struct types.
func (LockDiscipline) guardedTypes(pkg *Package) map[*types.Named]*guardedType {
	out := map[*types.Named]*guardedType{}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named := namedType(tn.Type())
		if named == nil {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		g := &guardedType{mutexFields: map[string]bool{}, dataFields: map[string]bool{}}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isSyncMutex(f.Type()) {
				g.mutexFields[f.Name()] = true
			} else {
				g.dataFields[f.Name()] = true
			}
		}
		if len(g.mutexFields) > 0 && len(g.dataFields) > 0 {
			out[named] = g
		}
	}
	return out
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// ldTouch summarizes how a non-locking method reaches guarded data: the
// first field touched, and the helper chain it goes through ("" for a
// direct touch).
type ldTouch struct {
	field string
	chain string
}

// checkMethods flags exported methods on guarded types that reach
// guarded fields without acquiring a mutex — directly, or through any
// chain of same-type helper methods that themselves do not lock
// (unexported helpers rely on the caller's lock by convention, so the
// finding lands on the exported entry point that broke the contract).
func (a LockDiscipline) checkMethods(prog *Program, guarded map[string]*guardedType) []Finding {
	// touches[funcKey] is the summary of a method that reaches guarded
	// data without locking; methods that acquire their mutex contribute
	// nothing (their accesses and callees run under the lock).
	touches := map[string]*ldTouch{}
	prog.Fixpoint(func(fn *FuncNode) bool {
		key := fn.FullName()
		if touches[key] != nil {
			return false
		}
		named, g, recvName := a.methodContext(fn, guarded)
		if g == nil || recvName == "" {
			return false
		}
		locks, touched := a.scanMethodBody(fn, g, recvName)
		if locks {
			return false
		}
		if len(touched) > 0 {
			touches[key] = &ldTouch{field: touched[0].Sel.Name}
			return true
		}
		// No direct touch: inherit the first helper summary, same type.
		for _, site := range fn.Calls {
			for _, target := range site.Targets {
				if target == fn || typeKeyOfRecv(target.Obj) != typeKey(named) {
					continue
				}
				if t := touches[target.FullName()]; t != nil {
					chain := target.Obj.Name()
					if t.chain != "" {
						chain += " -> " + t.chain
					}
					touches[key] = &ldTouch{field: t.field, chain: chain}
					return true
				}
			}
		}
		return false
	})

	var out []Finding
	for _, fn := range prog.Functions() {
		if !fn.Decl.Name.IsExported() {
			continue
		}
		named, _, _ := a.methodContext(fn, guarded)
		t := touches[fn.FullName()]
		if named == nil || t == nil {
			continue
		}
		if t.chain == "" {
			out = append(out, Finding{
				Pos:      fn.posOf(fn.Decl.Name),
				Analyzer: a.Name(),
				Severity: Error,
				Message: fmt.Sprintf("exported method %s.%s touches guarded field %q without acquiring the mutex",
					named.Obj().Name(), fn.Decl.Name.Name, t.field),
			})
		} else {
			out = append(out, Finding{
				Pos:      fn.posOf(fn.Decl.Name),
				Analyzer: a.Name(),
				Severity: Error,
				Message: fmt.Sprintf("exported method %s.%s touches guarded field %q via %s without acquiring the mutex",
					named.Obj().Name(), fn.Decl.Name.Name, t.field, t.chain),
			})
		}
	}
	return out
}

// methodContext resolves a node to (receiver named type, guard info,
// receiver name) when it is a usable method on a guarded type.
func (LockDiscipline) methodContext(fn *FuncNode, guarded map[string]*guardedType) (*types.Named, *guardedType, string) {
	if fn.Decl.Recv == nil || len(fn.Decl.Recv.List) != 1 {
		return nil, nil, ""
	}
	recvType := fn.Pkg.Info.TypeOf(fn.Decl.Recv.List[0].Type)
	if p, ok := recvType.(*types.Pointer); ok {
		recvType = p.Elem()
	}
	named := namedType(recvType)
	g := guarded[typeKey(named)]
	if g == nil {
		return nil, nil, ""
	}
	var recvName string
	if len(fn.Decl.Recv.List[0].Names) > 0 {
		recvName = fn.Decl.Recv.List[0].Names[0].Name
	}
	if recvName == "" || recvName == "_" {
		return nil, nil, ""
	}
	return named, g, recvName
}

// typeKeyOfRecv is typeKey for a method's receiver type ("" for plain
// functions).
func typeKeyOfRecv(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return typeKey(namedType(t))
}

// scanMethodBody reports whether the method acquires one of its mutex
// fields, and which guarded data fields it touches through the receiver,
// in source order.
func (LockDiscipline) scanMethodBody(fn *FuncNode, g *guardedType, recvName string) (locks bool, touched []*ast.SelectorExpr) {
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// recv.mu.Lock() etc. appears as (recv.mu).Lock — the inner
		// selector is recv.mu, whose parent carries the method name.
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvName {
			switch {
			case g.mutexFields[sel.Sel.Name]:
				// A bare recv.mu reference inside Lock/Unlock calls.
			case g.dataFields[sel.Sel.Name]:
				touched = append(touched, sel)
			}
		}
		if inner, ok := sel.X.(*ast.SelectorExpr); ok {
			if id, ok := inner.X.(*ast.Ident); ok && id.Name == recvName && g.mutexFields[inner.Sel.Name] {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					locks = true
				}
			}
		}
		return true
	})
	return locks, touched
}

// homeTierCalls names the operations whose latency is bounded by the CXL
// link, not device memory: each one can stall in the fault-retry budget
// or fail an entire outage long. Holding a queue mutex across them blocks
// the fast path behind the slow one.
var homeTierCalls = map[string]bool{
	"gateHome":         true,
	"gateHomePageRead": true,
	"gateEvictWrites":  true,
	"ReadThrough":      true,
	"WriteThrough":     true,
	"CheckpointChunk":  true,
	"DrainWritebacks":  true,
	"drainOne":         true,
}

// checkQueueMutexHomeCalls flags home-tier calls made while a mutex whose
// name contains "queue" is held. Lock/Unlock pairs are tracked in source
// position order; a deferred Unlock means the mutex is held to the end of
// the function, so everything after the Lock counts as under it.
func (a LockDiscipline) checkQueueMutexHomeCalls(pkg *Package, fn *ast.FuncDecl) []Finding {
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	const (
		evLock = iota
		evUnlock
		evHomeCall
	)
	type event struct {
		pos  token.Pos
		kind int
		name string
	}
	var events []event
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if inner, ok := sel.X.(*ast.SelectorExpr); ok &&
			strings.Contains(strings.ToLower(inner.Sel.Name), "queue") &&
			isSyncMutex(pkg.Info.TypeOf(inner)) {
			switch sel.Sel.Name {
			case "Lock", "RLock":
				events = append(events, event{call.Pos(), evLock, inner.Sel.Name})
			case "Unlock", "RUnlock":
				if !deferred[call] {
					events = append(events, event{call.Pos(), evUnlock, inner.Sel.Name})
				}
			}
			return true
		}
		if homeTierCalls[sel.Sel.Name] {
			events = append(events, event{call.Pos(), evHomeCall, sel.Sel.Name})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var out []Finding
	held := ""
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			held = ev.name
		case evUnlock:
			held = ""
		case evHomeCall:
			if held != "" {
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(ev.pos),
					Analyzer: a.Name(),
					Severity: Error,
					Message: fmt.Sprintf("home-tier call %s while holding writeback-queue mutex %q; a link stall here starves every queue user",
						ev.name, held),
				})
			}
		}
	}
	return out
}

// checkUnwrapLiveness flags x.Unwrap() calls in test functions that occur
// after a `go` statement with no intervening .Wait() call: the unwrapped
// value is unsynchronized, so handing it out while goroutines may still
// be running defeats the wrapper.
func (a LockDiscipline) checkUnwrapLiveness(pkg *Package, fn *ast.FuncDecl) []Finding {
	var lastGo, lastWait ast.Node
	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			lastGo = n
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Wait":
				lastWait = n
			case "Unwrap":
				if lastGo != nil && (lastWait == nil || lastWait.Pos() < lastGo.Pos()) && n.Pos() > lastGo.Pos() {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(n.Pos()),
						Analyzer: a.Name(),
						Severity: Warning,
						Message:  "Unwrap called after spawning goroutines with no Wait in between; the inner value is unsynchronized",
					})
				}
			}
		}
		return true
	})
	return out
}
