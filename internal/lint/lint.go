// Package lint is a small, pure-stdlib static-analysis framework for the
// Salus codebase, plus the project-specific analyzers that run under it.
// It exists because the paper's correctness argument rests on invariants
// the Go type system cannot fully express — which address domain a uint64
// belongs to, which fields a mutex guards, how wide a minor counter is —
// and those invariants must be machine-checked, not re-reviewed, as the
// hot paths grow.
//
// The framework loads packages with go/parser and type-checks them with
// go/types (stdlib dependencies come from the source importer), then runs
// each Analyzer over every requested package. Findings carry file:line
// positions and a severity; cmd/salus-lint turns any finding into a
// non-zero exit.
//
// A finding can be suppressed by placing a comment of the form
//
//	//salus-lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory by convention (the linter does not parse it, reviewers do).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity classifies a finding.
type Severity int

const (
	// Warning marks heuristic findings (e.g. naming-convention inference)
	// that deserve a look but may be false positives.
	Warning Severity = iota
	// Error marks violations of a hard invariant.
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Severity Severity
	Message  string
}

// String formats a finding the way compilers do, so editors can jump to it.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Severity, f.Message, f.Analyzer)
}

// Package is one type-checked package handed to analyzers.
type Package struct {
	// Path is the import path (or a synthetic path for testdata packages).
	Path string
	// Fset positions every node in Files.
	Fset *token.FileSet
	// Files are the parsed source files, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and object maps.
	Info *types.Info
}

// An Analyzer checks one invariant over a package.
type Analyzer interface {
	// Name is the analyzer's identifier, used in findings and in
	// salus-lint:ignore comments.
	Name() string
	// Doc is a one-line description for the CLI's usage text.
	Doc() string
	// Run returns the analyzer's findings for pkg.
	Run(pkg *Package) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		AddrDomain{},
		LockDiscipline{},
		DroppedErr{},
		CtrWidth{},
	}
}

// Run applies every analyzer to every package, drops suppressed findings,
// and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		sup := newSuppressions(pkg)
		for _, a := range analyzers {
			for _, f := range a.Run(pkg) {
				if sup.covers(a.Name(), f.Pos) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// suppressions indexes salus-lint:ignore comments by file, line, and
// analyzer name.
type suppressions struct {
	// byFile maps filename -> line -> set of suppressed analyzer names
	// ("*" suppresses all).
	byFile map[string]map[int]map[string]bool
}

func newSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byFile: map[string]map[int]map[string]bool{}}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "salus-lint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "salus-lint:ignore"))
				name := "*"
				if len(fields) > 0 {
					name = fields[0]
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := s.byFile[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					s.byFile[pos.Filename] = lines
				}
				// The comment covers its own line (trailing comment) and
				// the next line (comment above the statement).
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = map[string]bool{}
					}
					lines[ln][name] = true
				}
			}
		}
	}
	return s
}

func (s *suppressions) covers(analyzer string, pos token.Position) bool {
	names := s.byFile[pos.Filename][pos.Line]
	return names[analyzer] || names["*"]
}

// exprString renders a (small) expression for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	}
	return "<expr>"
}

// namedType returns the named (or alias-resolved) type behind t, or nil.
func namedType(t types.Type) *types.Named {
	n, _ := t.(*types.Named)
	return n
}

// isUnsignedInt reports whether t's underlying type is an unsigned
// integer (the shape of both address domains and counter fields).
func isUnsignedInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}
