// Package lint is a small, pure-stdlib static-analysis framework for the
// Salus codebase, plus the project-specific analyzers that run under it.
// It exists because the paper's correctness argument rests on invariants
// the Go type system cannot fully express — which address domain a uint64
// belongs to, which fields a mutex guards, how wide a minor counter is —
// and those invariants must be machine-checked, not re-reviewed, as the
// hot paths grow.
//
// The framework loads packages with go/parser and type-checks them with
// go/types (stdlib dependencies come from the source importer), then runs
// each Analyzer over every requested package. Findings carry file:line
// positions and a severity; cmd/salus-lint turns any finding into a
// non-zero exit.
//
// Analyzers come in two shapes. A PackageAnalyzer sees one type-checked
// package at a time (the original per-package suite). A ProgramAnalyzer
// sees the whole Program — every loaded package plus a static call graph
// with interface dispatch resolved by method-set matching — and can
// therefore reason across function and package boundaries (taint flows
// laundered through helpers, lock orders spanning call chains). Both run
// under the same Run entry point over one shared type-checked load.
//
// A finding can be suppressed by placing a comment of the form
//
//	//salus-lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory and machine-enforced: an ignore comment with no written
// reason suppresses nothing and is itself reported as a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity classifies a finding.
type Severity int

const (
	// Warning marks heuristic findings (e.g. naming-convention inference)
	// that deserve a look but may be false positives.
	Warning Severity = iota
	// Error marks violations of a hard invariant.
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Severity Severity
	Message  string
}

// String formats a finding the way compilers do, so editors can jump to it.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Severity, f.Message, f.Analyzer)
}

// Package is one type-checked package handed to analyzers.
type Package struct {
	// Path is the import path (or a synthetic path for testdata packages).
	Path string
	// Fset positions every node in Files.
	Fset *token.FileSet
	// Files are the parsed source files, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and object maps.
	Info *types.Info
}

// An Analyzer checks one invariant. Every analyzer also implements
// PackageAnalyzer or ProgramAnalyzer, which carry the actual entry point.
type Analyzer interface {
	// Name is the analyzer's identifier, used in findings and in
	// ignore comments.
	Name() string
	// Doc is a one-line description for the CLI's usage text.
	Doc() string
}

// A PackageAnalyzer checks one invariant a package at a time.
type PackageAnalyzer interface {
	Analyzer
	// Run returns the analyzer's findings for pkg.
	Run(pkg *Package) []Finding
}

// A ProgramAnalyzer checks one invariant over the whole program, with the
// call graph available for interprocedural reasoning.
type ProgramAnalyzer interface {
	Analyzer
	// RunProgram returns the analyzer's findings for prog.
	RunProgram(prog *Program) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		AddrDomain{},
		LockDiscipline{},
		DroppedErr{},
		CtrWidth{},
		PlaintextFlow{},
		LockOrder{},
		SimClock{},
	}
}

// Run builds the whole-program view once and applies every analyzer to
// it: the type-checked load and call graph are shared across analyzers,
// which is what keeps a full-suite run on the real tree within the CI
// budget. Suppressed findings are dropped; the rest come back sorted by
// position with exact duplicates collapsed.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	return RunProgram(BuildProgram(pkgs), analyzers)
}

// RunProgram is Run for a pre-built Program.
func RunProgram(prog *Program, analyzers []Analyzer) []Finding {
	sup, out := newSuppressions(prog.Packages)
	for _, a := range analyzers {
		var fs []Finding
		switch a := a.(type) {
		case ProgramAnalyzer:
			fs = a.RunProgram(prog)
		case PackageAnalyzer:
			for _, pkg := range prog.Packages {
				fs = append(fs, a.Run(pkg)...)
			}
		}
		for _, f := range fs {
			if sup.covers(a.Name(), f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Collapse exact duplicates: a file shared between two package views
	// (a package and its test variant) must not double-report.
	dedup := out[:0]
	for i, f := range out {
		if i > 0 && f == out[i-1] {
			continue
		}
		dedup = append(dedup, f)
	}
	return dedup
}

// SuppressionAnalyzer names the pseudo-analyzer that findings about the
// ignore mechanism itself (a salus-lint:ignore with no written reason)
// are attributed to.
const SuppressionAnalyzer = "suppression"

// suppressions indexes salus-lint:ignore comments by file, line, and
// analyzer name.
type suppressions struct {
	// byFile maps filename -> line -> set of suppressed analyzer names
	// ("*" suppresses all).
	byFile map[string]map[int]map[string]bool
}

// newSuppressions builds one global index over every package — a finding
// is matched against every ignore comment in the program, not only those
// of the package whose analysis produced it — and returns a finding for
// each ignore comment that carries no written reason. A reasonless
// comment suppresses nothing: the invariant "every suppression carries a
// justification" is itself machine-checked.
func newSuppressions(pkgs []*Package) (*suppressions, []Finding) {
	s := &suppressions{byFile: map[string]map[int]map[string]bool{}}
	var out []Finding
	seen := map[token.Position]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "salus-lint:ignore") {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, "salus-lint:ignore"))
					pos := pkg.Fset.Position(c.Pos())
					if len(fields) < 2 {
						// Name but no reason, or neither: not a suppression.
						if !seen[pos] {
							seen[pos] = true
							out = append(out, Finding{
								Pos:      pos,
								Analyzer: SuppressionAnalyzer,
								Severity: Error,
								Message:  "salus-lint:ignore without a written reason suppresses nothing; state why the finding is acceptable",
							})
						}
						continue
					}
					name := fields[0]
					lines := s.byFile[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]bool{}
						s.byFile[pos.Filename] = lines
					}
					// The comment covers its own line (trailing comment) and
					// the next line (comment above the statement).
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						if lines[ln] == nil {
							lines[ln] = map[string]bool{}
						}
						lines[ln][name] = true
					}
				}
			}
		}
	}
	return s, out
}

func (s *suppressions) covers(analyzer string, pos token.Position) bool {
	names := s.byFile[pos.Filename][pos.Line]
	return names[analyzer] || names["*"]
}

// exprString renders a (small) expression for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.SliceExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	}
	return "<expr>"
}

// namedType returns the named (or alias-resolved) type behind t, or nil.
func namedType(t types.Type) *types.Named {
	n, _ := t.(*types.Named)
	return n
}

// isUnsignedInt reports whether t's underlying type is an unsigned
// integer (the shape of both address domains and counter fields).
func isUnsignedInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}
