package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// AddrDomain flags data flowing between the home (CXL) and device (GPU)
// address domains. The domains are distinct named types — HomeAddr and
// DevAddr, canonically securemem's — so direct assignment is already a
// compile error; what remains expressible, and what this analyzer catches,
// is the explicit cross conversion `DevAddr(h)` / `HomeAddr(d)` that a
// hurried edit writes to silence the compiler. Converting through plain
// uint64 is the sanctioned escape hatch: it forces the author to leave the
// typed world deliberately, at a boundary (crypto, storage indexing) where
// the domain no longer applies.
//
// As a fallback for not-yet-migrated code, the analyzer also applies
// naming-convention inference: passing an identifier named like a device
// address where a parameter is named like a home address (or vice versa)
// when both sides are still bare integers. Those findings are warnings,
// not errors.
type AddrDomain struct{}

// Name implements Analyzer.
func (AddrDomain) Name() string { return "addrdomain" }

// Doc implements Analyzer.
func (AddrDomain) Doc() string {
	return "flags conversions and argument passing that cross the home/device address domains"
}

// domainOf classifies a type as home (+1), device (-1), or neither (0).
// Types are matched by name with an unsigned-integer underlying type, so
// the analyzer works on any package that adopts the convention (and on
// self-contained test fixtures), not only on securemem itself.
func domainOf(t types.Type) int {
	n := namedType(t)
	if n == nil || !isUnsignedInt(n) {
		return 0
	}
	switch n.Obj().Name() {
	case "HomeAddr":
		return +1
	case "DevAddr":
		return -1
	}
	return 0
}

// nameDomainOf classifies an identifier name: homeAddr-ish (+1),
// devAddr-ish (-1), or neither (0).
func nameDomainOf(name string) int {
	l := strings.ToLower(name)
	switch {
	case strings.Contains(l, "homeaddr"):
		return +1
	case strings.Contains(l, "devaddr"):
		return -1
	}
	return 0
}

// Run implements Analyzer.
func (a AddrDomain) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if tv, ok := pkg.Info.Types[n.Fun]; ok && tv.IsType() {
					out = append(out, a.checkConversion(pkg, n)...)
				} else {
					out = append(out, a.checkCall(pkg, n)...)
				}
			case *ast.AssignStmt:
				out = append(out, a.checkAssign(pkg, n)...)
			}
			return true
		})
	}
	return out
}

// checkConversion flags T(x) where T and x sit in opposite domains.
func (a AddrDomain) checkConversion(pkg *Package, call *ast.CallExpr) []Finding {
	if len(call.Args) != 1 {
		return nil
	}
	dst := domainOf(pkg.Info.Types[call.Fun].Type)
	src := domainOf(pkg.Info.TypeOf(call.Args[0]))
	if dst == 0 || src == 0 || dst == src {
		return nil
	}
	return []Finding{{
		Pos:      pkg.Fset.Position(call.Pos()),
		Analyzer: a.Name(),
		Severity: Error,
		Message: fmt.Sprintf("cross-domain address conversion %s: convert through uint64 at an explicit domain boundary instead",
			exprString(call.Fun)+"("+exprString(call.Args[0])+")"),
	}}
}

// checkCall applies naming-convention inference to call arguments whose
// types are still bare integers.
func (a AddrDomain) checkCall(pkg *Package, call *ast.CallExpr) []Finding {
	sig, ok := pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Variadic() {
		return nil
	}
	if sig.Params().Len() != len(call.Args) {
		return nil
	}
	var out []Finding
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		param := sig.Params().At(i)
		want, got := nameDomainOf(param.Name()), nameDomainOf(id.Name)
		if want == 0 || got == 0 || want == got {
			continue
		}
		// Only infer on untyped (bare integer) values: once either side
		// carries a domain type, the type-based checks own the case.
		if domainOf(param.Type()) != 0 || domainOf(pkg.Info.TypeOf(id)) != 0 {
			continue
		}
		if !isBareInt(param.Type()) || !isBareInt(pkg.Info.TypeOf(id)) {
			continue
		}
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(arg.Pos()),
			Analyzer: a.Name(),
			Severity: Warning,
			Message: fmt.Sprintf("argument %q passed as parameter %q crosses address domains by naming convention",
				id.Name, param.Name()),
		})
	}
	return out
}

// checkAssign applies naming-convention inference to ident = ident
// assignments of bare integers.
func (a AddrDomain) checkAssign(pkg *Package, as *ast.AssignStmt) []Finding {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	var out []Finding
	for i := range as.Lhs {
		lhs, ok1 := as.Lhs[i].(*ast.Ident)
		rhs, ok2 := as.Rhs[i].(*ast.Ident)
		if !ok1 || !ok2 {
			continue
		}
		want, got := nameDomainOf(lhs.Name), nameDomainOf(rhs.Name)
		if want == 0 || got == 0 || want == got {
			continue
		}
		lt, rt := pkg.Info.TypeOf(lhs), pkg.Info.TypeOf(rhs)
		if lt == nil || rt == nil || domainOf(lt) != 0 || domainOf(rt) != 0 {
			continue
		}
		if !isBareInt(lt) || !isBareInt(rt) {
			continue
		}
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(as.Pos()),
			Analyzer: a.Name(),
			Severity: Warning,
			Message: fmt.Sprintf("assignment %s = %s crosses address domains by naming convention",
				lhs.Name, rhs.Name),
		})
	}
	return out
}

// isBareInt reports whether t is an unnamed basic integer type.
func isBareInt(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
