package lint

import (
	"fmt"
	"go/types"
	"strings"
)

// SimClock forbids wall-clock time and unseeded randomness in the
// deterministic core. Every chaos ladder in the repo — differential
// checking, fault injection, crash journaling, link chaos — and every
// ddmin-shrunk reproducer assumes that re-running a trace with the same
// seed replays the same execution. One time.Now in a core package breaks
// that silently: the reproducer still runs, it just stops reproducing.
//
// Core packages are matched by package name (securemem, pagecache,
// check, fault, crash, link, sim, serve — with any _test variant), mirroring
// droppederr's name-based matching so fixtures can declare small
// stand-ins. Test files are included: a flaky test is exactly the
// failure mode this exists to prevent.
//
// The check is interprocedural: a core function calling a non-core
// module helper that reaches time.Now three frames down is flagged at
// the core-side call site, with the chain in the message.
type SimClock struct{}

// Name implements Analyzer.
func (SimClock) Name() string { return "simclock" }

// Doc implements Analyzer.
func (SimClock) Doc() string {
	return "forbids time.Now/time.Sleep/unseeded math/rand in the deterministic core, including via helper chains"
}

// simCorePackages are the package names forming the deterministic core.
var simCorePackages = map[string]bool{
	"securemem": true,
	"pagecache": true,
	"check":     true,
	"fault":     true,
	"crash":     true,
	"link":      true,
	"sim":       true,
	// The traffic service charges deadlines, admission refills, and retry
	// backoff to the shared sim.Clock; wall-clock time leaking in would
	// make availability SLO runs unreproducible.
	"serve": true,
	// Tenant op quotas refill per attempt, never per wall-clock tick, so
	// cross-tenant denial counts stay a pure function of the seed.
	"tenant": true,
	// Migration sessions must replay bit-identically from a seed: the
	// handshake nonce is caller-provided and retry backoff is charged
	// to the sim clock, so neither wall time nor ambient randomness may
	// leak into the stream schedule.
	"migrate": true,
}

// simClockCorePkg reports whether a package name is in the deterministic
// core ("securemem_test" counts as "securemem").
func simClockCorePkg(name string) bool {
	return simCorePackages[strings.TrimSuffix(name, "_test")]
}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
// Duration arithmetic and constants are fine; anything that *reads the
// clock* or *waits on it* is not.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// allowedRandFuncs are the math/rand package-level constructors that
// produce a *seeded* generator — the sanctioned way to get randomness in
// the core. Everything else at package level draws from the implicitly
// seeded global source.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// simClockForbidden classifies a callee as nondeterministic, returning a
// short description ("" = fine).
func simClockForbidden(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// Methods (e.g. on a seeded *rand.Rand or a live *time.Timer) are
		// downstream of an already-flagged constructor; don't double-report.
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			return "unseeded " + fn.Pkg().Name() + "." + fn.Name()
		}
	}
	return ""
}

// RunProgram implements ProgramAnalyzer.
func (a SimClock) RunProgram(prog *Program) []Finding {
	// chains[funcKey] describes how a function reaches the wall clock:
	// "time.Now", or "helperA -> helperB -> time.Now" ("" = it doesn't).
	chains := map[string]string{}
	prog.Fixpoint(func(fn *FuncNode) bool {
		if chains[fn.FullName()] != "" {
			return false
		}
		for _, site := range fn.Calls {
			if what := simClockForbidden(site.Callee); what != "" {
				chains[fn.FullName()] = what
				return true
			}
			for _, target := range site.Targets {
				if chain := chains[target.FullName()]; chain != "" {
					chains[fn.FullName()] = shortFuncName(target.Obj) + " -> " + chain
					return true
				}
			}
		}
		return false
	})

	var out []Finding
	for _, fn := range prog.Functions() {
		if !simClockCorePkg(fn.Pkg.Types.Name()) {
			continue
		}
		for _, site := range fn.Calls {
			if what := simClockForbidden(site.Callee); what != "" {
				out = append(out, Finding{
					Pos:      fn.posOf(site.Call),
					Analyzer: a.Name(),
					Severity: Error,
					Message: fmt.Sprintf("%s in deterministic core package %q breaks sim-clock reproducibility; thread the sim clock or a seeded source instead",
						what, fn.Pkg.Types.Name()),
				})
				continue
			}
			// Indirect: a core function calling a non-core module helper
			// whose chain reaches the clock. Core callees are skipped —
			// they get their own direct finding.
			for _, target := range site.Targets {
				if simClockCorePkg(target.Pkg.Types.Name()) {
					continue
				}
				if chain := chains[target.FullName()]; chain != "" {
					out = append(out, Finding{
						Pos:      fn.posOf(site.Call),
						Analyzer: a.Name(),
						Severity: Error,
						Message: fmt.Sprintf("call from deterministic core package %q reaches the wall clock (%s); thread the sim clock or a seeded source instead",
							fn.Pkg.Types.Name(), shortFuncName(target.Obj)+" -> "+chain),
					})
					break
				}
			}
		}
	}
	return out
}
