package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// DroppedErr flags call statements that silently discard an error
// returned by one of the model-layer APIs (securemem, pagecache, sim,
// and the public salus package). In this codebase an ignored error from
// those packages usually means an ignored ErrIntegrity/ErrFreshness —
// i.e. a detected attack dropped on the floor. Explicitly assigning to
// the blank identifier (`_ = c.Flush()`) is the sanctioned discard and
// is not flagged.
type DroppedErr struct{}

// errPackages are the package *names* whose errors must not be dropped.
// Matching by name (not full import path) lets violation fixtures under
// testdata/ declare their own small securemem stand-in.
var errPackages = map[string]bool{
	"securemem": true,
	"pagecache": true,
	"sim":       true,
	"salus":     true,
}

// Name implements Analyzer.
func (DroppedErr) Name() string { return "droppederr" }

// Doc implements Analyzer.
func (DroppedErr) Doc() string {
	return "flags discarded error returns from securemem/pagecache/sim/salus APIs"
}

// Run implements Analyzer.
func (a DroppedErr) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = n.Call
			case *ast.DeferStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			if f := a.check(pkg, call); f != nil {
				out = append(out, *f)
			}
			return true
		})
	}
	return out
}

// check reports whether call discards an error from a watched package.
func (a DroppedErr) check(pkg *Package, call *ast.CallExpr) *Finding {
	callee := calleeFunc(pkg, call)
	if callee == nil || callee.Pkg() == nil || !errPackages[callee.Pkg().Name()] {
		return nil
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return nil
	}
	return &Finding{
		Pos:      pkg.Fset.Position(call.Pos()),
		Analyzer: a.Name(),
		Severity: Error,
		Message: fmt.Sprintf("error returned by %s.%s is discarded; handle it or assign to _ explicitly",
			callee.Pkg().Name(), callee.Name()),
	}
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := pkg.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// lastResultIsError reports whether sig's final result is the error type.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	n := namedType(res.At(res.Len() - 1).Type())
	return n != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}
