package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DroppedErr flags call statements that silently discard an error
// returned by one of the model-layer APIs (securemem, pagecache, sim,
// and the public salus package). In this codebase an ignored error from
// those packages usually means an ignored ErrIntegrity/ErrFreshness —
// i.e. a detected attack dropped on the floor. Explicitly assigning to
// the blank identifier (`_ = c.Flush()`) is the sanctioned discard and
// is not flagged.
//
// It also flags dead sentinel checks: an errors.Is/errors.As against a
// package-level `errors.New` sentinel that the package never wraps with
// %w nor returns as a value. Such a check can never be true — the classic
// cause is wrapping the sentinel with %v instead of %w, which hides it
// from the errors.Is chain. Sentinels defined in other packages are not
// judged (their wrap sites are out of view).
type DroppedErr struct{}

// errPackages are the package *names* whose errors must not be dropped.
// Matching by name (not full import path) lets violation fixtures under
// testdata/ declare their own small securemem stand-in.
var errPackages = map[string]bool{
	"securemem": true,
	"pagecache": true,
	"sim":       true,
	"salus":     true,
}

// Name implements Analyzer.
func (DroppedErr) Name() string { return "droppederr" }

// Doc implements Analyzer.
func (DroppedErr) Doc() string {
	return "flags discarded error returns from securemem/pagecache/sim/salus APIs and dead errors.Is sentinel checks"
}

// Run implements Analyzer.
func (a DroppedErr) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = n.Call
			case *ast.DeferStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			if f := a.check(pkg, call); f != nil {
				out = append(out, *f)
			}
			return true
		})
	}
	out = append(out, a.deadSentinelChecks(pkg)...)
	return out
}

// sentinelCheck records one errors.Is/As call against a local sentinel.
type sentinelCheck struct {
	obj  types.Object
	call *ast.CallExpr
	fn   string // "Is" or "As"
}

// deadSentinelChecks finds errors.Is/As calls that can never match: the
// checked sentinel is defined in this package yet is neither wrapped with
// %w nor returned as a value anywhere in it.
func (a DroppedErr) deadSentinelChecks(pkg *Package) []Finding {
	// Package-level sentinels: `var X = errors.New(...)`.
	sentinels := map[types.Object]bool{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					call, ok := vs.Values[i].(*ast.CallExpr)
					if !ok {
						continue
					}
					if callee := calleeFunc(pkg, call); callee != nil && callee.Pkg() != nil &&
						callee.Pkg().Path() == "errors" && callee.Name() == "New" {
						if obj := pkg.Info.Defs[name]; obj != nil {
							sentinels[obj] = true
						}
					}
				}
			}
		}
	}
	if len(sentinels) == 0 {
		return nil
	}

	// Classify every sentinel use. A use is "claimed" when it sits in a
	// context that does not put the sentinel into the error chain: the
	// second argument of errors.Is/As, or any argument of fmt.Errorf —
	// with %w the wrap makes it matchable, without (%v and friends) it is
	// exactly the bug this report exists for.
	var checks []sentinelCheck
	wrapped := map[types.Object]bool{}
	claimed := map[token.Pos]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch {
			case callee.Pkg().Path() == "errors" && (callee.Name() == "Is" || callee.Name() == "As") && len(call.Args) == 2:
				if id, ok := call.Args[1].(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil && sentinels[obj] {
						claimed[id.Pos()] = true
						checks = append(checks, sentinelCheck{obj: obj, call: call, fn: callee.Name()})
					}
				}
			case callee.Pkg().Path() == "fmt" && callee.Name() == "Errorf" && len(call.Args) > 1:
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				wraps := strings.Contains(lit.Value, "%w")
				for _, arg := range call.Args[1:] {
					id, ok := arg.(*ast.Ident)
					if !ok {
						continue
					}
					if obj := pkg.Info.Uses[id]; obj != nil && sentinels[obj] {
						claimed[id.Pos()] = true
						if wraps {
							wrapped[obj] = true
						}
					}
				}
			}
			return true
		})
	}

	// Every unclaimed use produces the sentinel as a value (returned,
	// assigned, passed on): identity matching keeps errors.Is valid.
	produced := map[types.Object]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || claimed[id.Pos()] {
				return true
			}
			if obj := pkg.Info.Uses[id]; obj != nil && sentinels[obj] {
				produced[obj] = true
			}
			return true
		})
	}

	var out []Finding
	for _, c := range checks {
		if wrapped[c.obj] || produced[c.obj] {
			continue
		}
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(c.call.Pos()),
			Analyzer: a.Name(),
			Severity: Error,
			Message: fmt.Sprintf("errors.%s check against %s can never match: the sentinel is neither wrapped with %%w nor returned in this package",
				c.fn, c.obj.Name()),
		})
	}
	return out
}

// check reports whether call discards an error from a watched package.
func (a DroppedErr) check(pkg *Package, call *ast.CallExpr) *Finding {
	callee := calleeFunc(pkg, call)
	if callee == nil || callee.Pkg() == nil || !errPackages[callee.Pkg().Name()] {
		return nil
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return nil
	}
	return &Finding{
		Pos:      pkg.Fset.Position(call.Pos()),
		Analyzer: a.Name(),
		Severity: Error,
		Message: fmt.Sprintf("error returned by %s.%s is discarded; handle it or assign to _ explicitly",
			callee.Pkg().Name(), callee.Name()),
	}
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := pkg.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// lastResultIsError reports whether sig's final result is the error type.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	n := namedType(res.At(res.Len() - 1).Type())
	return n != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}
