package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// loadFixture type-checks one violation package under testdata/src.
func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no packages loaded", name)
	}
	return pkgs
}

// runGolden compares one analyzer's findings over its fixture against
// testdata/<name>.golden. Run with -update to regenerate.
func runGolden(t *testing.T, name string, a Analyzer) {
	t.Helper()
	findings := Run(loadFixture(t, name), []Analyzer{a})
	if len(findings) == 0 {
		t.Fatalf("%s: fixture produced no findings; the analyzer is blind to its bug class", name)
	}
	var b strings.Builder
	for _, f := range findings {
		rel := filepath.ToSlash(f.Pos.Filename)
		if i := strings.Index(rel, "testdata/src/"); i >= 0 {
			rel = rel[i+len("testdata/src/"):]
		}
		fmt.Fprintf(&b, "%s:%d: %s: %s [%s]\n", rel, f.Pos.Line, f.Severity, f.Message, f.Analyzer)
	}
	got := b.String()

	goldenPath := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("%s findings mismatch\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestAddrDomainGolden(t *testing.T)     { runGolden(t, "addrdomain", AddrDomain{}) }
func TestLockDisciplineGolden(t *testing.T) { runGolden(t, "lockdiscipline", LockDiscipline{}) }
func TestDroppedErrGolden(t *testing.T)     { runGolden(t, "securemem", DroppedErr{}) }
func TestCtrWidthGolden(t *testing.T)       { runGolden(t, "ctrwidth", CtrWidth{}) }

// TestSuppressionComment proves the ignore mechanism: the fixture's
// Unwrap method has an unguarded access that only the salus-lint:ignore
// comment keeps out of the findings.
func TestSuppressionComment(t *testing.T) {
	pkgs := loadFixture(t, "lockdiscipline")
	for _, f := range Run(pkgs, []Analyzer{LockDiscipline{}}) {
		if strings.Contains(f.Message, "Unwrap") && strings.Contains(f.Message, "guarded field") {
			t.Errorf("suppressed finding leaked: %s", f)
		}
	}
}

// TestSeverities locks in the severity split: type-driven findings are
// errors, naming-convention inference stays a warning.
func TestSeverities(t *testing.T) {
	findings := Run(loadFixture(t, "addrdomain"), []Analyzer{AddrDomain{}})
	var errs, warns int
	for _, f := range findings {
		switch f.Severity {
		case Error:
			errs++
		case Warning:
			warns++
		}
	}
	if errs == 0 || warns == 0 {
		t.Errorf("want both severities from the addrdomain fixture, got %d errors / %d warnings", errs, warns)
	}
}
