package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// loadFixture type-checks one violation package under testdata/src,
// plus any extra directories (fixture subpackages) named after it — one
// loader, so cross-package objects unify in the call graph.
func loadFixture(t *testing.T, name string, extra ...string) []*Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range append([]string{name}, extra...) {
		ps, err := l.LoadDir(filepath.Join("testdata", "src", dir))
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, ps...)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no packages loaded", name)
	}
	return pkgs
}

// runGolden compares one analyzer's findings over its fixture against
// testdata/<name>.golden. Run with -update to regenerate.
func runGolden(t *testing.T, name string, a Analyzer, extra ...string) {
	t.Helper()
	findings := Run(loadFixture(t, name, extra...), []Analyzer{a})
	if len(findings) == 0 {
		t.Fatalf("%s: fixture produced no findings; the analyzer is blind to its bug class", name)
	}
	var b strings.Builder
	for _, f := range findings {
		rel := filepath.ToSlash(f.Pos.Filename)
		if i := strings.Index(rel, "testdata/src/"); i >= 0 {
			rel = rel[i+len("testdata/src/"):]
		}
		fmt.Fprintf(&b, "%s:%d: %s: %s [%s]\n", rel, f.Pos.Line, f.Severity, f.Message, f.Analyzer)
	}
	got := b.String()

	goldenPath := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("%s findings mismatch\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestAddrDomainGolden(t *testing.T)     { runGolden(t, "addrdomain", AddrDomain{}) }
func TestLockDisciplineGolden(t *testing.T) { runGolden(t, "lockdiscipline", LockDiscipline{}) }
func TestDroppedErrGolden(t *testing.T)     { runGolden(t, "securemem", DroppedErr{}) }
func TestCtrWidthGolden(t *testing.T)       { runGolden(t, "ctrwidth", CtrWidth{}) }
func TestPlaintextFlowGolden(t *testing.T)  { runGolden(t, "plaintextflow", PlaintextFlow{}) }
func TestLockOrderGolden(t *testing.T)      { runGolden(t, "lockorder", LockOrder{}) }
func TestSimClockGolden(t *testing.T) {
	runGolden(t, "simclock", SimClock{}, filepath.Join("simclock", "util"))
}

// TestRepoSelfScan asserts the real tree is clean under the full
// analyzer suite: every invariant the linters encode actually holds in
// the code the repo ships, and every suppression carries a reason.
func TestRepoSelfScan(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(pkgs, All()) {
		t.Errorf("self-scan finding: %s", f)
	}
}

// TestSuppressionReasonMandatory pins the machine-enforced ignore
// contract: a salus-lint:ignore with no written reason suppresses
// nothing and is itself an error finding.
func TestSuppressionReasonMandatory(t *testing.T) {
	pkgs := loadFixture(t, "suppression")
	findings := Run(pkgs, []Analyzer{LockDiscipline{}})
	var reasonless, leaked bool
	for _, f := range findings {
		if f.Analyzer == SuppressionAnalyzer {
			reasonless = true
			if f.Severity != Error {
				t.Errorf("reasonless ignore should be an error, got %s", f.Severity)
			}
		}
		if strings.Contains(f.Message, "guarded field") {
			leaked = true
		}
	}
	if !reasonless {
		t.Error("reasonless salus-lint:ignore produced no finding")
	}
	if !leaked {
		t.Error("reasonless salus-lint:ignore still suppressed the underlying finding")
	}
}

// TestFindingOrder pins the global sort: findings from different
// analyzers over multiple packages come back ordered by file, line,
// column — not grouped per package or per analyzer.
func TestFindingOrder(t *testing.T) {
	pkgs := loadFixture(t, "lockdiscipline", "addrdomain")
	findings := Run(pkgs, All())
	if len(findings) < 2 {
		t.Fatal("fixture mix produced too few findings to order")
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		switch {
		case a.Pos.Filename < b.Pos.Filename:
		case a.Pos.Filename == b.Pos.Filename && a.Pos.Line <= b.Pos.Line:
		default:
			t.Errorf("findings out of order: %s before %s", a, b)
		}
		if a == b {
			t.Errorf("duplicate finding survived dedup: %s", a)
		}
	}
}

// TestSuppressionComment proves the ignore mechanism: the fixture's
// Unwrap method has an unguarded access that only the salus-lint:ignore
// comment keeps out of the findings.
func TestSuppressionComment(t *testing.T) {
	pkgs := loadFixture(t, "lockdiscipline")
	for _, f := range Run(pkgs, []Analyzer{LockDiscipline{}}) {
		if strings.Contains(f.Message, "Unwrap") && strings.Contains(f.Message, "guarded field") {
			t.Errorf("suppressed finding leaked: %s", f)
		}
	}
}

// TestSeverities locks in the severity split: type-driven findings are
// errors, naming-convention inference stays a warning.
func TestSeverities(t *testing.T) {
	findings := Run(loadFixture(t, "addrdomain"), []Analyzer{AddrDomain{}})
	var errs, warns int
	for _, f := range findings {
		switch f.Severity {
		case Error:
			errs++
		case Warning:
			warns++
		}
	}
	if errs == 0 || warns == 0 {
		t.Errorf("want both severities from the addrdomain fixture, got %d errors / %d warnings", errs, warns)
	}
}
