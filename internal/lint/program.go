package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer of the lint framework: a static
// call graph over every loaded package, plus the small fixpoint machinery
// the whole-program analyzers (plaintextflow, lockorder, simclock, and the
// interprocedural half of lockdiscipline) share.
//
// The graph is intentionally modest — direct calls resolved through the
// type-checker, plus interface dispatch resolved by method-set matching
// against every named type in the program. Calls through function values
// and function literals are not resolved; the analyzers that consume the
// graph are written so that an unresolved call degrades to a missed edge
// (possible false negative), never a false positive.

// Program is the whole-module view handed to ProgramAnalyzers: every
// loaded package plus the static call graph across them.
type Program struct {
	// Packages are the analyzed packages, in load order.
	Packages []*Package
	// funcs indexes every function and method declared (with a body) in
	// the analyzed packages by its canonical full name. The same function
	// loaded twice (once in its analyzed package, once as a dependency of
	// another package's type-check) unifies onto one node.
	funcs map[string]*FuncNode
	// order lists the nodes in stable (file, offset) order.
	order []*FuncNode
	// implCache memoizes interface-method implementer lookups.
	implCache map[string][]*FuncNode
}

// FuncNode is one function or method in the call graph.
type FuncNode struct {
	// Obj is the type-checker object of the function.
	Obj *types.Func
	// Pkg is the package the declaration was analyzed in.
	Pkg *Package
	// Decl is the syntax, body included.
	Decl *ast.FuncDecl
	// Calls are the function's call sites in source order.
	Calls []*CallSite
}

// FullName returns the canonical name used to unify nodes across package
// loads, e.g. "(*pkg/path.Type).Method" or "pkg/path.Func".
func (n *FuncNode) FullName() string { return funcKey(n.Obj) }

// CallSite is one call expression inside a FuncNode.
type CallSite struct {
	// Call is the call expression.
	Call *ast.CallExpr
	// Callee is the static callee object when the type-checker resolves
	// one (possibly an interface method, possibly external to the
	// module); nil for calls through plain function values.
	Callee *types.Func
	// Targets are the module-internal functions this call may reach: the
	// static callee's node for a direct call, or every method-set match
	// for a call through an interface.
	Targets []*FuncNode
}

// funcKey canonicalizes a *types.Func so that the dependency-load copy of
// a function and its analyzed copy share one key.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		ptr := ""
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			ptr = "*"
		}
		if named := namedType(recv); named != nil && named.Obj().Pkg() != nil {
			return "(" + ptr + named.Obj().Pkg().Path() + "." + named.Obj().Name() + ")." + fn.Name()
		}
		return fn.FullName()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.FullName()
}

// BuildProgram constructs the call graph over pkgs. It is cheap relative
// to the type-checked load, so Run rebuilds it per invocation; analyzers
// all share the one instance.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Packages:  pkgs,
		funcs:     map[string]*FuncNode{},
		implCache: map[string][]*FuncNode{},
	}
	// Pass 1: index every declared function body.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Pkg: pkg, Decl: fd}
				p.funcs[funcKey(obj)] = node
				p.order = append(p.order, node)
			}
		}
	}
	sort.Slice(p.order, func(i, j int) bool {
		a := p.order[i].Pkg.Fset.Position(p.order[i].Decl.Pos())
		b := p.order[j].Pkg.Fset.Position(p.order[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	// Pass 2: resolve call sites.
	for _, node := range p.order {
		n := node
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			site := &CallSite{Call: call, Callee: calleeFunc(n.Pkg, call)}
			if site.Callee != nil {
				site.Targets = p.resolveTargets(site.Callee)
			}
			n.Calls = append(n.Calls, site)
			return true
		})
	}
	return p
}

// Functions returns every node in stable source order.
func (p *Program) Functions() []*FuncNode { return p.order }

// FuncNodeOf returns the node for fn (resolving dependency-load copies to
// their analyzed declaration), or nil when fn is external or bodyless.
func (p *Program) FuncNodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return p.funcs[funcKey(fn)]
}

// resolveTargets maps a static callee to module-internal nodes. A
// concrete function resolves to its own node; an interface method
// resolves to the matching method of every named type in the program
// whose method set satisfies the interface.
func (p *Program) resolveTargets(callee *types.Func) []*FuncNode {
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			return p.implementers(iface, callee)
		}
	}
	if n := p.FuncNodeOf(callee); n != nil {
		return []*FuncNode{n}
	}
	return nil
}

// implementers finds, by method-set matching, every module-internal
// method that a call to interface method m may dispatch to.
func (p *Program) implementers(iface *types.Interface, m *types.Func) []*FuncNode {
	key := funcKey(m)
	if out, ok := p.implCache[key]; ok {
		return out
	}
	var out []*FuncNode
	seen := map[string]bool{}
	for _, pkg := range p.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named := namedType(tn.Type())
			if named == nil {
				continue
			}
			// A method set can satisfy the interface via T or *T.
			var recv types.Type
			switch {
			case types.Implements(named, iface):
				recv = named
			case types.Implements(types.NewPointer(named), iface):
				recv = types.NewPointer(named)
			default:
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
			target, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if n := p.FuncNodeOf(target); n != nil && !seen[n.FullName()] {
				seen[n.FullName()] = true
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	p.implCache[key] = out
	return out
}

// Fixpoint drives a whole-program summary computation: step is applied to
// every function in stable order, repeatedly, until one full pass reports
// no change. Summaries must grow monotonically for this to terminate; the
// pass cap is a backstop against a non-monotone step.
func (p *Program) Fixpoint(step func(fn *FuncNode) bool) {
	const maxPasses = 32
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, fn := range p.order {
			if step(fn) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// posOf returns the position of n in fn's fileset.
func (n *FuncNode) posOf(node ast.Node) token.Position {
	return n.Pkg.Fset.Position(node.Pos())
}

// recvTypeName returns the receiver's named-type name for methods (with
// pointers dereferenced), or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named := namedType(t); named != nil {
		return named.Obj().Name()
	}
	return ""
}

// shortFuncName renders a callee for messages: "pkg.Func" or
// "Type.Method".
func shortFuncName(fn *types.Func) string {
	if t := recvTypeName(fn); t != "" {
		return t + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// isByteSlice reports whether t is (or aliases) []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isByteArray reports whether t is a [N]byte array (the stack sector
// buffers use this shape).
func isByteArray(t types.Type) bool {
	a, ok := t.Underlying().(*types.Array)
	if !ok {
		return false
	}
	b, ok := a.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// baseIdentObj peels slice/index/paren/star expressions down to the root
// identifier's object: the variable whose buffer an expression denotes.
func baseIdentObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// packageNameOf returns the declaring package name of fn, or "".
func packageNameOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name()
}

// containsFold reports whether s's lowercase form contains substr.
func containsFold(s, substr string) bool {
	return strings.Contains(strings.ToLower(s), substr)
}
