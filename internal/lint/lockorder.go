package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the whole-program lock-acquisition graph and rejects
// cycles. A node is a lock identity (a mutex field of a named type, or a
// package-level mutex variable); an edge A → B records that somewhere in
// the program lock B is acquired — directly, or anywhere down a call
// chain — while A is held. Two call chains that acquire the same pair of
// locks in opposite orders put both edges in the graph and close a
// cycle, which is the classic ABBA deadlock the runtime can only find by
// actually deadlocking. With ROADMAP item 2 about to shard the
// writeback-queue and quarantine mutexes per page range, the lock count
// is going up; this analyzer keeps the acquisition order a machine-
// checked partial order rather than a convention.
//
// Acquisition tracking mirrors lockdiscipline's queue-mutex scan: events
// are ordered by source position, and a deferred Unlock holds the lock to
// the end of the function. Calls through unresolved function values
// degrade to missed edges, never false positives.
type LockOrder struct{}

// Name implements Analyzer.
func (LockOrder) Name() string { return "lockorder" }

// Doc implements Analyzer.
func (LockOrder) Doc() string {
	return "builds the interprocedural lock-acquisition graph and flags lock-order cycles (potential ABBA deadlocks)"
}

// loEdge is one acquisition-order edge: to is acquired while from is held.
type loEdge struct {
	from, to string
}

// loEdgeSite records where an edge was first observed.
type loEdgeSite struct {
	edge loEdge
	pos  token.Position
	// via names the callee whose chain acquires edge.to when the
	// acquisition is indirect ("" for a direct Lock call).
	via string
}

// RunProgram implements ProgramAnalyzer.
func (a LockOrder) RunProgram(prog *Program) []Finding {
	edges := a.collectEdges(prog)
	if len(edges) == 0 {
		return nil
	}
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if adj[e.edge.from] == nil {
			adj[e.edge.from] = map[string]bool{}
		}
		adj[e.edge.from][e.edge.to] = true
	}
	var out []Finding
	reported := map[loEdge]bool{}
	for _, e := range edges {
		if reported[e.edge] {
			continue
		}
		// The edge from→to is part of a cycle iff `from` is reachable
		// from `to`.
		path := loPath(adj, e.edge.to, e.edge.from)
		if path == nil {
			continue
		}
		reported[e.edge] = true
		cycle := append([]string{e.edge.from}, path...)
		how := "acquired"
		if e.via != "" {
			how = "acquired (via " + e.via + ")"
		}
		out = append(out, Finding{
			Pos:      e.pos,
			Analyzer: a.Name(),
			Severity: Error,
			Message: fmt.Sprintf("lock %s %s while %s is held completes a lock-order cycle (%s); acquisition order must be a partial order",
				e.edge.to, how, e.edge.from, strings.Join(cycle, " -> ")),
		})
	}
	return out
}

// loPath returns a node path from -> ... -> to (BFS, deterministic by
// sorted neighbor order), or nil if to is unreachable.
func loPath(adj map[string]map[string]bool, from, to string) []string {
	type item struct {
		node string
		path []string
	}
	queue := []item{{from, []string{from}}}
	seen := map[string]bool{from: true}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.node == to {
			return it.path
		}
		next := make([]string, 0, len(adj[it.node]))
		for n := range adj[it.node] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if seen[n] {
				continue
			}
			seen[n] = true
			queue = append(queue, item{n, append(append([]string{}, it.path...), n)})
		}
	}
	return nil
}

// collectEdges computes per-function transitive acquired-lock summaries
// to fixpoint, then replays every function once to record ordered edges
// with positions.
func (a LockOrder) collectEdges(prog *Program) []loEdgeSite {
	// acquires[funcKey] = set of lock IDs the function may acquire,
	// directly or through any callee.
	acquires := map[string]map[string]bool{}
	prog.Fixpoint(func(fn *FuncNode) bool {
		set := acquires[fn.FullName()]
		if set == nil {
			set = map[string]bool{}
			acquires[fn.FullName()] = set
		}
		changed := false
		a.scan(prog, fn, acquires, func(lock string) {
			if !set[lock] {
				set[lock] = true
				changed = true
			}
		}, nil)
		return changed
	})

	var edges []loEdgeSite
	seen := map[loEdge]bool{}
	for _, fn := range prog.Functions() {
		a.scan(prog, fn, acquires, nil, func(e loEdgeSite) {
			if !seen[e.edge] {
				seen[e.edge] = true
				edges = append(edges, e)
			}
		})
	}
	return edges
}

// scan walks one function in source-position order, tracking the held-
// lock set. onAcquire (when non-nil) sees every lock the function may
// acquire, including via callees; onEdge (when non-nil) sees every
// ordered acquisition observed while another lock is held.
func (a LockOrder) scan(prog *Program, fn *FuncNode, acquires map[string]map[string]bool, onAcquire func(string), onEdge func(loEdgeSite)) {
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	const (
		evLock = iota
		evUnlock
		evCall
	)
	type event struct {
		pos  token.Pos
		kind int
		lock string
		site *CallSite
	}
	var events []event
	sites := map[*ast.CallExpr]*CallSite{}
	for _, site := range fn.Calls {
		sites[site.Call] = site
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isSyncMutex(fn.Pkg.Info.TypeOf(sel.X)) {
			if lock := lockExprID(fn.Pkg, sel.X); lock != "" {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					events = append(events, event{call.Pos(), evLock, lock, nil})
				case "Unlock", "RUnlock":
					if !deferred[call] {
						events = append(events, event{call.Pos(), evUnlock, lock, nil})
					}
				}
				return true
			}
		}
		if site := sites[call]; site != nil && len(site.Targets) > 0 {
			events = append(events, event{call.Pos(), evCall, "", site})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var held []string
	heldSet := map[string]bool{}
	acquire := func(lock string, pos token.Pos, via string) {
		if onAcquire != nil {
			onAcquire(lock)
		}
		if onEdge != nil {
			for _, h := range held {
				if h == lock {
					continue // re-acquisition of the same identity: lockdiscipline territory
				}
				onEdge(loEdgeSite{loEdge{h, lock}, fn.Pkg.Fset.Position(pos), via})
			}
		}
	}
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			acquire(ev.lock, ev.pos, "")
			if !heldSet[ev.lock] {
				heldSet[ev.lock] = true
				held = append(held, ev.lock)
			}
		case evUnlock:
			if heldSet[ev.lock] {
				delete(heldSet, ev.lock)
				for i, h := range held {
					if h == ev.lock {
						held = append(held[:i:i], held[i+1:]...)
						break
					}
				}
			}
		case evCall:
			// A call acquires everything in its targets' transitive sets.
			callee := map[string]bool{}
			for _, t := range ev.site.Targets {
				for lock := range acquires[t.FullName()] {
					callee[lock] = true
				}
			}
			locks := make([]string, 0, len(callee))
			for lock := range callee {
				locks = append(locks, lock)
			}
			sort.Strings(locks)
			via := ""
			if ev.site.Callee != nil {
				via = shortFuncName(ev.site.Callee)
			}
			for _, lock := range locks {
				acquire(lock, ev.pos, via)
			}
		}
	}
}

// lockExprID names the mutex an expression denotes: "Type.field" for a
// mutex field of a named struct type, "pkg.var" for a package-level
// mutex, or "" when the lock has no stable identity (locals, map
// entries) — those degrade to untracked.
func lockExprID(pkg *Package, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		v, ok := pkg.Info.ObjectOf(x.Sel).(*types.Var)
		if !ok {
			return ""
		}
		if v.IsField() {
			t := pkg.Info.TypeOf(x.X)
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named := namedType(t); named != nil {
				return named.Obj().Name() + "." + v.Name()
			}
			return ""
		}
		// Qualified package-level var: pkg.Mu.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		v, ok := pkg.Info.ObjectOf(x).(*types.Var)
		if !ok {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.ParenExpr:
		return lockExprID(pkg, x.X)
	}
	return ""
}

// LockOrderReport renders the acquisition graph as a stable textual
// report: one line per edge, sorted, with the site that first produced
// it. cmd/salus-lint prints it under -lockreport so the ordering the
// sharding work must preserve is reviewable, not tribal knowledge.
func LockOrderReport(prog *Program) string {
	edges := LockOrder{}.collectEdges(prog)
	if len(edges) == 0 {
		return "lock-order graph: no ordered acquisitions (single-lock program)\n"
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].edge.from != edges[j].edge.from {
			return edges[i].edge.from < edges[j].edge.from
		}
		return edges[i].edge.to < edges[j].edge.to
	})
	var b strings.Builder
	b.WriteString("lock-order graph: acquisition edges (A -> B: B acquired while A held)\n")
	for _, e := range edges {
		via := ""
		if e.via != "" {
			via = " via " + e.via
		}
		fmt.Fprintf(&b, "  %s -> %s%s (%s:%d)\n", e.edge.from, e.edge.to, via, e.pos.Filename, e.pos.Line)
	}
	return b.String()
}
