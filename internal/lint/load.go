package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages rooted at a Go module directory,
// resolving module-internal imports to their source directories and
// everything else through the stdlib source importer. It deliberately
// avoids go/packages (an external module) to keep the tool dependency-free.
type Loader struct {
	// ModuleDir is the absolute path of the module root (the directory
	// holding go.mod).
	ModuleDir string
	// ModulePath is the module's import path prefix from go.mod.
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	// deps caches dependency loads (no test files) by import path.
	deps map[string]*Package
}

// NewLoader locates the enclosing module starting at dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		deps:       map[string]*Package{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadAll loads every package under the module root (the "./..." walk),
// skipping testdata, vendor, and hidden directories. Test files are
// included: internal tests join their package, external _test packages
// are returned as packages of their own.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		matches, _ := filepath.Glob(filepath.Join(path, "*.go"))
		if len(matches) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		ps, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ps...)
	}
	return pkgs, nil
}

// LoadDir loads the package(s) in one directory: the primary package
// (with its internal test files) and, when present, the external _test
// package.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	groups, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	var names []string
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	var pkgs []*Package
	for _, name := range names {
		p, err := l.check(l.pathForDir(dir, name), groups[name])
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// pathForDir synthesizes the import path for a package group in dir.
func (l *Loader) pathForDir(dir, pkgName string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || rel == "." || strings.HasPrefix(rel, "..") {
		rel = ""
	}
	path := l.ModulePath
	if rel != "" {
		path += "/" + filepath.ToSlash(rel)
	}
	if strings.HasSuffix(pkgName, "_test") {
		path += ".test"
	}
	return path
}

// parseDir parses dir's files into package-name groups. Internal test
// files (package foo in foo_test.go) join the primary group; external
// test files (package foo_test) form their own. When includeTests is
// false, _test.go files are skipped entirely (dependency loads).
func (l *Loader) parseDir(dir string, includeTests bool) (map[string][]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	groups := map[string][]*ast.File{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		name := file.Name.Name
		groups[name] = append(groups[name], file)
	}
	return groups, nil
}

// Import implements types.Importer: module-internal paths are resolved to
// their directory and loaded (without test files); anything else goes to
// the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		if p, ok := l.deps[path]; ok {
			return p.Types, nil
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
		groups, err := l.parseDir(dir, false)
		if err != nil {
			return nil, err
		}
		if len(groups) != 1 {
			return nil, fmt.Errorf("lint: %s: expected one package, found %d", dir, len(groups))
		}
		for _, files := range groups {
			p, err := l.check(path, files)
			if err != nil {
				return nil, err
			}
			l.deps[path] = p
			return p.Types, nil
		}
	}
	return l.std.Import(path)
}

// check type-checks one group of files as a package.
func (l *Loader) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
