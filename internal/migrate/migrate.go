// Package migrate implements attested live migration of one protected
// tenant between two simulated hosts (tenant.Pools). Salus's
// no-re-encryption property is what makes the pipeline cheap: the
// tenant's memory moves as ciphertext verbatim — the stream carries the
// checkpoint journal (ciphertext pages plus the compact CXL-side
// metadata: counters, MAC sectors, TrustedRoot lineage) and the
// destination rebuilds the tenant with tenant.Pool.RecoverTenant, whose
// derived keys match the source's by construction when both pools hold
// the same masters.
//
// The pipeline is robust by construction, not by luck:
//
//   - An attestation handshake (Measurement of tenant identity, key
//     domain, geometry, and slice shape) gates the transfer; the MAC
//     chain of every stream frame is seeded from the full handshake
//     transcript under the tenant's migration key, so handshake
//     tampering poisons every later frame.
//   - Every stream record is CRC+MAC framed (frame.go): truncation and
//     bit flips fail ErrTornStream, reorder and duplication fail
//     ErrReplay, forgery fails ErrAttestation, epoch/lineage rollback
//     fails ErrFreshness. Always typed, never bytes, never a panic.
//   - Sync runs as iterative delta rounds with a convergence bound: a
//     full self-contained bootstrap round, then checkpoint deltas while
//     the source keeps serving, then a final quiesced round + cutover
//     under serve.WithQuiescedSwap so in-flight traffic lands entirely
//     pre-cutover on the source or post-cutover on the destination.
//   - Link flaps retry with capped backoff charged to the sim clock;
//     exhausted retries park the session resumable (ErrLinkLost) — a
//     later Run continues with the in-flight record, never re-sending
//     chunks the destination already verified.
//   - The destination applies nothing until the cutover record
//     verifies; any rejection leaves it untouched and the source still
//     serving. There is no half-applied destination state by design.
//
// salus-check -migrate replays the whole contract per seed: a
// differential oracle against a no-migration control run, a
// man-in-the-middle phase injecting every attack at every record
// boundary, crashes of either endpoint at every stream boundary, and
// bystander tenants on both pools asserted zero-blast-radius.
package migrate

import (
	"errors"
	"fmt"

	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
	"github.com/salus-sim/salus/internal/tenant"
)

// Typed failure taxonomy. errors.Is is the supported way to classify an
// outcome; every adversarial or accidental stream corruption maps to
// exactly one of the first four.
var (
	// ErrAttestation reports an identity failure: handshake
	// measurements that do not describe the same tenant, a frame MAC
	// forged or computed under the wrong key or chain state, or a
	// destination whose applied state does not reproduce the attested
	// digest.
	ErrAttestation = errors.New("migrate: attestation failed")
	// ErrTornStream reports structural stream damage: truncated or
	// bit-flipped records, impossible lengths, rounds cut off before
	// their commit.
	ErrTornStream = errors.New("migrate: torn stream")
	// ErrReplay reports a record out of stream position: reordered,
	// duplicated, or injected after completion.
	ErrReplay = errors.New("migrate: stream record replayed or reordered")
	// ErrFreshness reports a rollback: a session or round trying to
	// install state at or below an epoch the destination already
	// trusts.
	ErrFreshness = errors.New("migrate: stale lineage (rollback rejected)")
	// ErrLinkLost reports transfer retries exhausted mid-stream; the
	// session stays resumable and the source stays intact.
	ErrLinkLost = errors.New("migrate: link lost (session resumable)")
	// ErrConfig reports an invalid migration configuration.
	ErrConfig = errors.New("migrate: invalid configuration")
)

// Swapper is the quiesced-cutover surface: serve.Server implements it.
// The callback runs with the service drained and the old engine handed
// in; returning the destination engine atomically redirects traffic.
type Swapper interface {
	WithQuiescedSwap(fn func(old *securemem.Concurrent) (*securemem.Concurrent, error)) error
}

// RetryPolicy bounds the per-record link retry loop, mirroring
// securemem's CXL retry discipline: backoff doubles from BaseBackoff,
// capped at MaxBackoff, charged to the sim clock.
type RetryPolicy struct {
	MaxRetries  int
	BaseBackoff sim.Cycle
	MaxBackoff  sim.Cycle
}

// DefaultRetryPolicy absorbs a short flap per record without giving up.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 8, BaseBackoff: 16, MaxBackoff: 1024}
}

func (p RetryPolicy) backoff(attempt int) sim.Cycle {
	if p.BaseBackoff == 0 {
		return 0
	}
	if attempt > 30 {
		attempt = 30
	}
	d := p.BaseBackoff << uint(attempt)
	if p.MaxBackoff != 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// Config describes one migration.
type Config struct {
	// SourcePool/Source are the serving host and the tenant moving off
	// it; DestPool must hold a same-id, same-shape slice built from the
	// same master keys.
	SourcePool *tenant.Pool
	Source     *tenant.Tenant
	DestPool   *tenant.Pool

	// Link models the inter-host transport; nil streams loss-free.
	// Clock absorbs transfer latency and retry backoff when non-nil.
	Link  *link.Link
	Clock *sim.Engine
	Retry RetryPolicy // zero value selects DefaultRetryPolicy

	// MaxRounds caps total sync rounds including the final quiesced one
	// (0 = 4); ConvergeBytes is the delta size at which sync stops
	// iterating and cuts over (0 = one chunk); ChunkSize is the stream
	// chunk payload size (0 = 1024).
	MaxRounds     int
	ConvergeBytes int
	ChunkSize     int

	// Nonce seeds the session MAC chain on the destination side. The
	// deterministic core takes it from the caller (campaigns derive it
	// from the seed) rather than ambient randomness.
	Nonce [32]byte

	// Swap, when non-nil, runs the final round and cutover inside a
	// quiesced service swap, and receives the destination engine.
	Swap Swapper

	// Tap, when non-nil, observes every sealed record just before
	// delivery and may return a replacement — the man-in-the-middle
	// hook the adversarial campaign drives (and its recorder: a tap
	// that copies frames builds the replay tape). Returning nil
	// delivers the original record unchanged. index counts records
	// from 0.
	Tap func(index int, frame []byte) []byte
}

func (c *Config) validate() error {
	switch {
	case c.SourcePool == nil || c.Source == nil || c.DestPool == nil:
		return fmt.Errorf("%w: source pool, source tenant, and destination pool are required", ErrConfig)
	case c.MaxRounds < 0 || c.ConvergeBytes < 0 || c.ChunkSize < 0:
		return fmt.Errorf("%w: negative round/converge/chunk bound", ErrConfig)
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 4
	}
	if c.MaxRounds < 2 {
		return fmt.Errorf("%w: need at least a bootstrap and a final round", ErrConfig)
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 1024
	}
	if c.ConvergeBytes == 0 {
		c.ConvergeBytes = c.ChunkSize
	}
	if c.Retry == (RetryPolicy{}) {
		c.Retry = DefaultRetryPolicy()
	}
	return nil
}

// Session is one migration in flight: the source-side cursor over the
// sync journal, the sealed-frame send queue, and the in-process
// destination endpoint. A session whose Run fails ErrLinkLost holds its
// position; a later Run resumes at the in-flight record.
type Session struct {
	cfg  Config
	recv *Receiver
	ch   *chain

	store   *crash.MemStore
	journal *crash.Journal
	framed  int // journal bytes already cut into frames

	queue     [][]byte // sealed frames not yet delivered
	delivered int      // records handed to the tap so far
	round     uint32
	lastDelta int
	lost      bool
	final     bool // final quiesced phase entered: failures become terminal
	done      bool
	failed    error

	ops stats.MigrateOps
}

// Start validates the configuration and performs the attestation
// handshake. Every handshake refusal is typed; nothing has moved yet.
func Start(cfg Config) (*Session, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	recv, err := NewReceiver(cfg.DestPool, cfg.Source.ID(), cfg.Nonce)
	if err != nil {
		return nil, err
	}
	offer := Offer{Measurement: Measure(cfg.SourcePool, cfg.Source)}
	accept, err := recv.Accept(offer)
	if err != nil {
		return nil, err
	}
	// The source checks the destination's measurement too: attestation
	// is mutual, not a one-way courtesy.
	if err := checkMeasurements(offer.Measurement, accept.Measurement); err != nil {
		return nil, err
	}
	key, err := cfg.Source.MigrationKey()
	if err != nil {
		return nil, err
	}
	store := crash.NewMemStore()
	s := &Session{
		cfg:     cfg,
		recv:    recv,
		ch:      newChain(key, chainSeed(key, offer, accept)),
		store:   store,
		journal: crash.NewJournal(store),
		ops:     stats.MigrateOps{Tenant: cfg.Source.ID()},
	}
	return s, nil
}

// Run drives the migration to completion: bootstrap round, delta rounds
// until the journal delta converges or the round budget is spent, then
// the final quiesced round and cutover. A link loss during the sync
// rounds parks the session mid-record (ErrLinkLost); calling Run again
// resumes there without re-sending any verified chunk. A failure inside
// the final quiesced phase is terminal instead — a resumed drain would
// complete the cutover on state captured before the quiesce was
// released, silently dropping writes served in between — and every
// terminal path leaves the source serving and the destination
// unmodified.
func (s *Session) Run() error {
	if s.done {
		return nil
	}
	if s.failed != nil {
		return s.failed
	}
	if s.lost {
		s.lost = false
		s.ops.Resumes++
		// Every already-verified chunk survives the resume; a naive
		// restart would re-stream them all.
		s.ops.ChunksSkipped += s.ops.ChunksSent
	}
	if !s.final {
		if err := s.drain(); err != nil {
			return s.fail(err)
		}
		for int(s.round) < s.cfg.MaxRounds-1 {
			if s.round > 0 && s.lastDelta <= s.cfg.ConvergeBytes {
				break // converged: the remaining delta fits the final round
			}
			if err := s.syncRound(false); err != nil {
				return s.fail(err)
			}
		}
		s.final = true
	}
	if err := s.runFinal(); err != nil {
		s.failed = err
		return err
	}
	return nil
}

// fail marks err terminal unless it is a resumable link loss.
func (s *Session) fail(err error) error {
	if !errors.Is(err, ErrLinkLost) {
		s.failed = err
	}
	return err
}

// runFinal executes the quiesced final round and cutover, through the
// Swapper when one is configured so service flips atomically from the
// source engine to the destination engine.
func (s *Session) runFinal() error {
	if s.cfg.Swap != nil {
		return s.cfg.Swap.WithQuiescedSwap(func(old *securemem.Concurrent) (*securemem.Concurrent, error) {
			if err := s.cutover(); err != nil {
				return nil, err
			}
			dst, err := s.cfg.DestPool.Tenant(s.ops.Tenant)
			if err != nil {
				return nil, err
			}
			return dst.Engine(), nil
		})
	}
	return s.cutover()
}

// Resumable reports whether a failed Run can be retried: true only
// after a link loss during the sync rounds; the final quiesced phase
// does not resume.
func (s *Session) Resumable() bool {
	return !s.done && s.failed == nil
}

// Ops returns the session's migration counters, including the typed
// rejections the destination endpoint recorded.
func (s *Session) Ops() stats.MigrateOps {
	ops := s.ops
	r := s.recv.Ops()
	ops.Torn += r.Torn
	ops.Replay += r.Replay
	ops.Attest += r.Attest
	ops.Fresh += r.Fresh
	return ops
}

// syncRound checkpoints one epoch (full on the bootstrap round), frames
// the new journal delta, and streams it. final selects the quiesced
// path's accounting; the caller provides the quiescing.
func (s *Session) syncRound(final bool) error {
	var (
		root securemem.TrustedRoot
		err  error
	)
	if s.round == 0 {
		root, err = s.cfg.Source.FullCheckpoint(s.journal)
	} else {
		root, err = s.cfg.Source.Checkpoint(s.journal)
	}
	if err != nil {
		return fmt.Errorf("migrate: source checkpoint: %w", err)
	}
	delta := s.store.Bytes()[s.framed:]
	s.lastDelta = len(delta)
	s.framed = len(s.store.Bytes())

	s.round++
	hdr := make([]byte, 20)
	putU32(hdr[0:], s.round)
	putU64(hdr[4:], root.Epoch)
	putU64(hdr[12:], uint64(len(delta)))
	s.enqueue(frameRound, hdr)
	for off := 0; off < len(delta); off += s.cfg.ChunkSize {
		end := off + s.cfg.ChunkSize
		if end > len(delta) {
			end = len(delta)
		}
		chunk := make([]byte, 8+end-off)
		putU64(chunk, uint64(s.framed-len(delta)+off))
		copy(chunk[8:], delta[off:end])
		s.enqueue(frameChunk, chunk)
	}
	s.enqueue(frameCommit, root.MarshalBinary())
	if !final {
		return s.drain()
	}
	return nil
}

// cutover runs the final sync round and the cutover record. The caller
// quiesces the source (via Swapper or by not writing); the digest in
// the cutover record is the attested byte-state the destination must
// reproduce.
func (s *Session) cutover() error {
	if err := s.drain(); err != nil {
		return err
	}
	if err := s.syncRound(true); err != nil {
		return err
	}
	digest := s.cfg.Source.StateDigest()
	s.enqueue(frameCutover, digest[:])
	if err := s.drain(); err != nil {
		return err
	}
	s.ops.Rounds = uint64(s.round)
	s.done = true
	return nil
}

// enqueue seals one frame at the current chain position and queues it
// for delivery. Sealing order fixes stream order; delivery may be
// interrupted and resumed without re-sealing.
func (s *Session) enqueue(typ byte, payload []byte) {
	s.queue = append(s.queue, s.ch.seal(typ, payload))
}

// drain delivers queued frames in order: each one crosses the link
// (with capped-backoff retry) and is fed to the destination endpoint.
// A link loss parks the queue for resume; a receiver rejection is
// terminal and typed.
func (s *Session) drain() error {
	for len(s.queue) > 0 {
		f := s.queue[0]
		if err := s.transfer(); err != nil {
			s.lost = true
			return err
		}
		wire := f
		if s.cfg.Tap != nil {
			if mutated := s.cfg.Tap(s.delivered, f); mutated != nil {
				wire = mutated
			}
			s.delivered++
		}
		if err := s.recv.Feed(wire); err != nil {
			return s.fail(err)
		}
		s.queue = s.queue[1:]
		s.ops.BytesStreamed += uint64(len(f))
		if f[2] == frameChunk {
			s.ops.ChunksSent++
		}
	}
	return nil
}

// transfer carries one record across the link, retrying refusals with
// capped backoff charged to the sim clock. Exhaustion is ErrLinkLost:
// resumable, source intact.
func (s *Session) transfer() error {
	if s.cfg.Link == nil {
		return nil
	}
	for attempt := 0; ; attempt++ {
		lat, err := s.cfg.Link.Transfer()
		if err == nil {
			if s.cfg.Clock != nil && lat > 0 {
				s.cfg.Clock.Advance(lat)
			}
			return nil
		}
		if attempt >= s.cfg.Retry.MaxRetries {
			return fmt.Errorf("%w: %d retries exhausted: %v", ErrLinkLost, attempt, err)
		}
		s.ops.Retries++
		if d := s.cfg.Retry.backoff(attempt); d > 0 && s.cfg.Clock != nil {
			s.cfg.Clock.Advance(d)
		}
	}
}

// Run is the one-shot entry point: handshake, sync, cutover. The
// returned counters are valid on error too — campaigns assert typed
// rejections through them.
func Run(cfg Config) (stats.MigrateOps, error) {
	s, err := Start(cfg)
	if err != nil {
		ops := stats.MigrateOps{}
		if cfg.Source != nil {
			ops.Tenant = cfg.Source.ID()
		}
		classify(&ops, err)
		return ops, err
	}
	err = s.Run()
	return s.Ops(), err
}

// classify counts one typed failure into the rejection counters.
func classify(ops *stats.MigrateOps, err error) {
	switch {
	case errors.Is(err, ErrTornStream):
		ops.Torn++
	case errors.Is(err, ErrReplay):
		ops.Replay++
	case errors.Is(err, ErrAttestation):
		ops.Attest++
	case errors.Is(err, ErrFreshness):
		ops.Fresh++
	}
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
