package migrate

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Stream frame layout, reusing the crash journal's framing discipline
// (magic + length + CRC sealing every record edge) and adding the
// transport-security layer a cross-host stream needs: a keyed MAC over
// a running hash chain, so a frame verifies only in its exact position
// in this exact session.
//
//	offset  size  field
//	0       2     magic "SM"
//	2       1     type
//	3       4     seq   (LE, position in the session stream)
//	7       4     plen  (LE, payload length)
//	11      plen  payload
//	11+plen 4     CRC32-IEEE over bytes [2, 11+plen)
//	15+plen 32    HMAC-SHA256(key, chain || bytes [2, 11+plen))
//
// The CRC is the accident detector (truncation, bit flips fail
// ErrTornStream before any crypto runs); the seq is the ordering
// detector (reorder and duplication fail ErrReplay); the MAC is the
// adversary detector (forgery and splicing fail ErrAttestation). The
// chain value advances per frame as SHA-256(chain || mac), seeded from
// the attestation transcript, so a frame recorded from another session
// — or from earlier in this one — can never verify even if its seq is
// patched: its MAC was computed over a different chain state.
const (
	frameMagic0    = 'S'
	frameMagic1    = 'M'
	frameHeaderLen = 11
	frameCRCLen    = 4
	frameMACLen    = 32
	frameOverhead  = frameHeaderLen + frameCRCLen + frameMACLen

	// maxFramePayload bounds a declared payload so a hostile length
	// field cannot drive allocation; streams chunk well below this.
	maxFramePayload = 1 << 20
)

// Frame types carried by the stream, in protocol order.
const (
	// frameRound opens one sync round: round number, source epoch, and
	// the byte length of this round's journal delta.
	frameRound byte = 1 + iota
	// frameChunk carries one contiguous span of the round's journal
	// delta: a stream-wide byte offset followed by the bytes.
	frameChunk
	// frameCommit closes a round with the round's marshalled
	// TrustedRoot — the lineage record freshness is judged against.
	frameCommit
	// frameCutover ends the session: the source's quiesced state digest
	// the destination must reproduce after applying the journal.
	frameCutover
)

// chain is one endpoint's half of the MAC chain. Source and receiver
// each hold one, seeded identically from the handshake transcript, and
// advance them in lockstep — frame n's MAC is bound to the MACs of
// every frame before it.
type chain struct {
	key  []byte
	link [32]byte
	seq  uint32
}

func newChain(key []byte, seed [32]byte) *chain {
	return &chain{key: key, link: seed}
}

// seal encodes and authenticates one frame at the chain's current
// position and advances the chain.
func (c *chain) seal(typ byte, payload []byte) []byte {
	f := make([]byte, frameOverhead+len(payload))
	f[0], f[1], f[2] = frameMagic0, frameMagic1, typ
	binary.LittleEndian.PutUint32(f[3:7], c.seq)
	binary.LittleEndian.PutUint32(f[7:11], uint32(len(payload)))
	copy(f[frameHeaderLen:], payload)
	body := f[2 : frameHeaderLen+len(payload)]
	binary.LittleEndian.PutUint32(f[frameHeaderLen+len(payload):], crc32.ChecksumIEEE(body))
	mac := hmac.New(sha256.New, c.key)
	mac.Write(c.link[:])
	mac.Write(body)
	mac.Sum(f[frameHeaderLen+len(payload)+frameCRCLen : frameHeaderLen+len(payload)+frameCRCLen])
	c.advance(f[frameHeaderLen+len(payload)+frameCRCLen:])
	return f
}

// open verifies one frame at the chain's current position and returns
// its type and payload, advancing the chain only on success. The check
// order is the typed-failure taxonomy: structural damage (length,
// magic, CRC) fails ErrTornStream; a frame out of position fails
// ErrReplay; a MAC mismatch — an adversary, not an accident — fails
// ErrAttestation. The payload is aliased into frame, not copied.
func (c *chain) open(frame []byte) (byte, []byte, error) {
	if len(frame) < frameOverhead {
		return 0, nil, fmt.Errorf("%w: frame %d bytes, want >= %d", ErrTornStream, len(frame), frameOverhead)
	}
	if frame[0] != frameMagic0 || frame[1] != frameMagic1 {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrTornStream, frame[:2])
	}
	plen := binary.LittleEndian.Uint32(frame[7:11])
	if plen > maxFramePayload || len(frame) != frameOverhead+int(plen) {
		return 0, nil, fmt.Errorf("%w: frame %d bytes for declared payload %d", ErrTornStream, len(frame), plen)
	}
	body := frame[2 : frameHeaderLen+plen]
	if got := binary.LittleEndian.Uint32(frame[frameHeaderLen+plen:]); got != crc32.ChecksumIEEE(body) {
		return 0, nil, fmt.Errorf("%w: CRC mismatch on frame seq %d", ErrTornStream, binary.LittleEndian.Uint32(frame[3:7]))
	}
	if seq := binary.LittleEndian.Uint32(frame[3:7]); seq != c.seq {
		return 0, nil, fmt.Errorf("%w: frame seq %d at stream position %d", ErrReplay, seq, c.seq)
	}
	tag := frame[frameHeaderLen+plen+frameCRCLen:]
	mac := hmac.New(sha256.New, c.key)
	mac.Write(c.link[:])
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return 0, nil, fmt.Errorf("%w: frame seq %d MAC mismatch", ErrAttestation, c.seq)
	}
	c.advance(tag)
	return frame[2], frame[frameHeaderLen : frameHeaderLen+plen], nil
}

// advance folds a verified frame's MAC into the chain.
func (c *chain) advance(tag []byte) {
	h := sha256.New()
	h.Write(c.link[:])
	h.Write(tag)
	h.Sum(c.link[:0])
	c.seq++
}
