package migrate

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/tenant"
)

func testGeometry() config.Geometry {
	return config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096}
}

// newPool builds a two-tenant pool: the migrating tenant m and a
// bystander peer, with optional distinct master keys.
func newPool(t *testing.T, masterMAC []byte) *tenant.Pool {
	t.Helper()
	p, err := tenant.NewPool(tenant.Config{
		Geometry: testGeometry(),
		Slices: []tenant.Slice{
			{ID: "m", BasePage: 0, Pages: 8, Frames: 2},
			{ID: "peer", BasePage: 8, Pages: 8, Frames: 2},
		},
		MACKey: masterMAC,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustTenant(t *testing.T, p *tenant.Pool, id string) *tenant.Tenant {
	t.Helper()
	ten, err := p.Tenant(id)
	if err != nil {
		t.Fatal(err)
	}
	return ten
}

// seedTenant writes a recognisable pattern across the slice.
func seedTenant(t *testing.T, ten *tenant.Tenant) map[securemem.HomeAddr][]byte {
	t.Helper()
	want := map[securemem.HomeAddr][]byte{}
	for page := 0; page < 8; page += 2 {
		addr := securemem.HomeAddr(page*4096 + 17*page)
		data := bytes.Repeat([]byte{byte('a' + page)}, 96)
		if err := ten.Write(addr, data); err != nil {
			t.Fatal(err)
		}
		want[addr] = data
	}
	return want
}

func checkTenant(t *testing.T, ten *tenant.Tenant, want map[securemem.HomeAddr][]byte) {
	t.Helper()
	for addr, data := range want {
		got := make([]byte, len(data))
		if err := ten.Read(addr, got); err != nil {
			t.Fatalf("read @%d: %v", addr, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read @%d diverged", addr)
		}
	}
}

func baseConfig(src, dst *tenant.Pool, t *testing.T) Config {
	return Config{
		SourcePool: src,
		Source:     mustTenant(t, src, "m"),
		DestPool:   dst,
		Nonce:      [32]byte{1, 2, 3},
	}
}

func TestMigrateRoundTrip(t *testing.T) {
	src, dst := newPool(t, nil), newPool(t, nil)
	m := mustTenant(t, src, "m")
	want := seedTenant(t, m)
	peerDigest := mustTenant(t, dst, "peer").StateDigest()

	ops, err := Run(baseConfig(src, dst, t))
	if err != nil {
		t.Fatal(err)
	}
	dm := mustTenant(t, dst, "m")
	checkTenant(t, dm, want)
	if sd, dd := m.StateDigest(), dm.StateDigest(); sd != dd {
		t.Fatal("source and destination digests diverge after cutover")
	}
	if ops.Rounds < 2 || ops.ChunksSent == 0 || ops.BytesStreamed == 0 {
		t.Fatalf("implausible counters: %+v", ops)
	}
	if ops.Torn+ops.Replay+ops.Attest+ops.Fresh != 0 {
		t.Fatalf("honest run recorded rejections: %+v", ops)
	}
	if got := mustTenant(t, dst, "peer").StateDigest(); got != peerDigest {
		t.Fatal("bystander digest changed on destination pool")
	}
	if int(ops.Rounds) > 4 {
		t.Fatalf("rounds %d exceed default budget", ops.Rounds)
	}
}

// TestMigrateTamperTaxonomy drives the in-line man-in-the-middle hook:
// a bit flip fails ErrTornStream at the CRC; a flip with a patched CRC
// survives to the MAC and fails ErrAttestation. Either way the source
// keeps serving and the destination tenant is untouched.
func TestMigrateTamperTaxonomy(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"bit-flip", func(f []byte) []byte {
			g := append([]byte(nil), f...)
			g[frameHeaderLen] ^= 0x40
			return g
		}, ErrTornStream},
		{"forge-with-valid-crc", func(f []byte) []byte {
			g := append([]byte(nil), f...)
			g[frameHeaderLen] ^= 0x40
			plen := len(g) - frameOverhead
			crc := crc32.ChecksumIEEE(g[2 : frameHeaderLen+plen])
			putU32(g[frameHeaderLen+plen:], crc)
			return g
		}, ErrAttestation},
		{"truncate", func(f []byte) []byte {
			return append([]byte(nil), f[:len(f)-7]...)
		}, ErrTornStream},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, dst := newPool(t, nil), newPool(t, nil)
			m := mustTenant(t, src, "m")
			want := seedTenant(t, m)
			destDigest := mustTenant(t, dst, "m").StateDigest()

			cfg := baseConfig(src, dst, t)
			cfg.Tap = func(i int, f []byte) []byte {
				if i == 2 { // a mid-round chunk record
					return tc.mutate(f)
				}
				return nil
			}
			ops, err := Run(cfg)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if ops.Torn+ops.Replay+ops.Attest+ops.Fresh == 0 {
				t.Fatalf("rejection not counted: %+v", ops)
			}
			checkTenant(t, m, want) // source intact and serving
			if got := mustTenant(t, dst, "m").StateDigest(); got != destDigest {
				t.Fatal("tampered stream modified the destination tenant")
			}
		})
	}
}

// TestMigrateTapeReplayAttacks records an honest session's frames and
// replays mutated tapes into fresh receivers: reorder and duplication
// fail ErrReplay, cross-feeding a later frame early fails before any
// byte applies, and replaying a whole stale session onto a destination
// that has moved on fails ErrFreshness at the handshake.
func TestMigrateTapeReplayAttacks(t *testing.T) {
	src, dst := newPool(t, nil), newPool(t, nil)
	m := mustTenant(t, src, "m")
	seedTenant(t, m)
	staleOffer := Offer{Measurement: Measure(src, m)} // epoch 0, pre-session

	var tape [][]byte
	cfg := baseConfig(src, dst, t)
	cfg.Tap = func(i int, f []byte) []byte {
		tape = append(tape, append([]byte(nil), f...))
		return nil
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(tape) < 4 {
		t.Fatalf("tape too short: %d records", len(tape))
	}

	freshReceiver := func(t *testing.T) *Receiver {
		pool := newPool(t, nil)
		r, err := NewReceiver(pool, "m", cfg.Nonce)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Accept(staleOffer); err != nil {
			t.Fatal(err)
		}
		return r
	}

	t.Run("verbatim-prefix-verifies", func(t *testing.T) {
		r := freshReceiver(t)
		for _, f := range tape[:3] {
			if err := r.Feed(f); err != nil {
				t.Fatal(err)
			}
		}
	})
	t.Run("reorder", func(t *testing.T) {
		r := freshReceiver(t)
		if err := r.Feed(tape[0]); err != nil {
			t.Fatal(err)
		}
		if err := r.Feed(tape[2]); !errors.Is(err, ErrReplay) {
			t.Fatalf("got %v, want ErrReplay", err)
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		r := freshReceiver(t)
		if err := r.Feed(tape[0]); err != nil {
			t.Fatal(err)
		}
		if err := r.Feed(tape[0]); !errors.Is(err, ErrReplay) {
			t.Fatalf("got %v, want ErrReplay", err)
		}
	})
	t.Run("fail-stop-latches", func(t *testing.T) {
		r := freshReceiver(t)
		if err := r.Feed(tape[1]); !errors.Is(err, ErrReplay) {
			t.Fatalf("got %v, want ErrReplay", err)
		}
		// Even the honest frame is refused after the poison.
		if err := r.Feed(tape[0]); !errors.Is(err, ErrReplay) {
			t.Fatalf("post-poison feed: got %v, want latched ErrReplay", err)
		}
	})
	t.Run("rollback-to-older-epoch", func(t *testing.T) {
		// dst already holds the migrated state; a stale session offer
		// (source epoch 0) must be refused at the handshake.
		r, err := NewReceiver(dst, "m", cfg.Nonce)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Accept(staleOffer); !errors.Is(err, ErrFreshness) {
			t.Fatalf("got %v, want ErrFreshness", err)
		}
	})
}

// TestMigrateAttestationRefusals pins the handshake gate: a destination
// in a different key domain (different masters) and a destination with
// the wrong slice shape are both refused typed before any byte moves.
func TestMigrateAttestationRefusals(t *testing.T) {
	src := newPool(t, nil)
	seedTenant(t, mustTenant(t, src, "m"))

	wrongKeys := newPool(t, []byte("a-different-master-mac-key"))
	if _, err := Run(baseConfig(src, wrongKeys, t)); !errors.Is(err, ErrAttestation) {
		t.Fatalf("wrong key domain: got %v, want ErrAttestation", err)
	}

	wrongShape, err := tenant.NewPool(tenant.Config{
		Geometry: testGeometry(),
		Slices:   []tenant.Slice{{ID: "m", BasePage: 0, Pages: 16, Frames: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(src, wrongShape, t)
	if _, err := Run(cfg); !errors.Is(err, ErrAttestation) {
		t.Fatalf("wrong slice shape: got %v, want ErrAttestation", err)
	}
}

// TestMigrateLinkFlapAbsorbed proves a short outage is absorbed by the
// capped-backoff retry loop without failing the session.
func TestMigrateLinkFlapAbsorbed(t *testing.T) {
	src, dst := newPool(t, nil), newPool(t, nil)
	m := mustTenant(t, src, "m")
	want := seedTenant(t, m)

	cfg := baseConfig(src, dst, t)
	cfg.Link = link.New(&link.ScriptPlan{Windows: []link.Window{
		{From: 3, To: 6, State: link.StateDown},
	}}, link.Config{})
	cfg.Retry = RetryPolicy{MaxRetries: 64, BaseBackoff: 1, MaxBackoff: 8}
	ops, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ops.Retries == 0 {
		t.Fatal("outage did not exercise the retry loop")
	}
	if ops.Resumes != 0 {
		t.Fatalf("absorbed flap recorded %d resumes", ops.Resumes)
	}
	checkTenant(t, mustTenant(t, dst, "m"), want)
}

// TestMigrateLinkLossResume proves record-level resume: a long outage
// exhausts the retry budget mid-stream, the session parks typed and
// resumable, and a later Run completes without re-sending the chunks
// the destination already verified.
func TestMigrateLinkLossResume(t *testing.T) {
	src, dst := newPool(t, nil), newPool(t, nil)
	m := mustTenant(t, src, "m")
	want := seedTenant(t, m)

	cfg := baseConfig(src, dst, t)
	cfg.Link = link.New(&link.ScriptPlan{Windows: []link.Window{
		{From: 4, To: 9, State: link.StateDown},
	}}, link.Config{Threshold: 1, Cooldown: 1})
	cfg.Retry = RetryPolicy{MaxRetries: 2, BaseBackoff: 1, MaxBackoff: 2}
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run()
	if !errors.Is(err, ErrLinkLost) {
		t.Fatalf("got %v, want ErrLinkLost", err)
	}
	if !s.Resumable() {
		t.Fatal("link loss must leave the session resumable")
	}
	checkTenant(t, m, want) // source intact while parked
	if mustTenant(t, dst, "m").Epoch() != 0 {
		t.Fatal("destination advanced before cutover")
	}

	sentBefore := s.Ops().ChunksSent
	if sentBefore == 0 {
		t.Fatal("outage window missed the chunk stream")
	}
	for tries := 0; !s.done; tries++ {
		if tries > 10 {
			t.Fatal("session did not complete after repeated resumes")
		}
		if err := s.Run(); err != nil && !errors.Is(err, ErrLinkLost) {
			t.Fatal(err)
		}
	}
	ops := s.Ops()
	if ops.Resumes == 0 || ops.ChunksSkipped < sentBefore {
		t.Fatalf("resume accounting: %+v (want skipped >= %d)", ops, sentBefore)
	}
	checkTenant(t, mustTenant(t, dst, "m"), want)
}

// fakeSwap satisfies Swapper: it hands the held engine to the callback
// and installs the returned one, mirroring serve.Server's contract.
type fakeSwap struct {
	eng     *securemem.Concurrent
	swapped bool
}

func (f *fakeSwap) WithQuiescedSwap(fn func(old *securemem.Concurrent) (*securemem.Concurrent, error)) error {
	ne, err := fn(f.eng)
	if err != nil {
		return err
	}
	f.eng = ne
	f.swapped = true
	return nil
}

func TestMigrateQuiescedSwapCutover(t *testing.T) {
	src, dst := newPool(t, nil), newPool(t, nil)
	m := mustTenant(t, src, "m")
	want := seedTenant(t, m)

	sw := &fakeSwap{eng: m.Engine()}
	cfg := baseConfig(src, dst, t)
	cfg.Swap = sw
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !sw.swapped {
		t.Fatal("cutover did not run through the quiesced swap")
	}
	dm := mustTenant(t, dst, "m")
	if sw.eng != dm.Engine() {
		t.Fatal("swap did not install the destination engine")
	}
	checkTenant(t, dm, want)
}

// TestMigrateChainPositionBinding pins the chain property directly: the
// same payload sealed at two stream positions produces different MACs,
// so a frame cannot be transplanted even with a patched seq.
func TestMigrateChainPositionBinding(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 32)
	a := newChain(key, [32]byte{1})
	f0 := a.seal(frameChunk, []byte("payload"))
	f1 := a.seal(frameChunk, []byte("payload"))

	b := newChain(key, [32]byte{1})
	if _, _, err := b.open(f0); err != nil {
		t.Fatal(err)
	}
	// Patch f0's seq to 1 and replay it in f1's position: the CRC can
	// be fixed, but the MAC was bound to chain position 0.
	g := append([]byte(nil), f0...)
	putU32(g[3:7], 1)
	plen := len(g) - frameOverhead
	putU32(g[frameHeaderLen+plen:], crc32.ChecksumIEEE(g[2:frameHeaderLen+plen]))
	if _, _, err := b.open(g); !errors.Is(err, ErrAttestation) {
		t.Fatalf("transplanted frame: got %v, want ErrAttestation", err)
	}

	c := newChain(key, [32]byte{1})
	if _, _, err := c.open(f0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.open(f1); err != nil {
		t.Fatal(err)
	}

	// A different session seed refuses the whole tape.
	d := newChain(key, [32]byte{2})
	if _, _, err := d.open(f0); !errors.Is(err, ErrAttestation) {
		t.Fatalf("cross-session frame: got %v, want ErrAttestation", err)
	}
}
