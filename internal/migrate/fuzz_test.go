package migrate

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzMigrationFrame feeds arbitrary bytes — and mutations of honestly
// sealed frames — through the stream decoder and holds the robustness
// contract: open never panics, every rejection is one of the four typed
// stream errors, a rejected frame does not advance the chain (no
// partial state), and the only accepted frame is the verbatim original
// at its exact position.
func FuzzMigrationFrame(f *testing.F) {
	key := bytes.Repeat([]byte{0x5a}, 32)
	seed := [32]byte{9}
	sealer := newChain(key, seed)
	honest := [][]byte{
		sealer.seal(frameRound, make([]byte, 20)),
		sealer.seal(frameChunk, append(make([]byte, 8), []byte("ciphertext bytes")...)),
		sealer.seal(frameCommit, []byte("not a real root but framed fine")),
		sealer.seal(frameCutover, make([]byte, 32)),
	}
	for _, h := range honest {
		f.Add(h)
	}
	f.Add([]byte{})
	f.Add([]byte("SM"))
	f.Add(bytes.Repeat([]byte{0xff}, frameOverhead))

	first := honest[0]
	f.Fuzz(func(t *testing.T, frame []byte) {
		c := newChain(key, seed)
		before := *c
		typ, payload, err := c.open(frame)
		if err != nil {
			if !errors.Is(err, ErrTornStream) && !errors.Is(err, ErrReplay) &&
				!errors.Is(err, ErrAttestation) && !errors.Is(err, ErrFreshness) {
				t.Fatalf("untyped rejection: %v", err)
			}
			if c.link != before.link || c.seq != before.seq {
				t.Fatal("rejected frame advanced the chain")
			}
			return
		}
		// Anything the fresh chain accepts at position 0 must be the
		// honest first frame, bit for bit.
		if !bytes.Equal(frame, first) {
			t.Fatalf("forged frame accepted: type %d, %d payload bytes", typ, len(payload))
		}
	})
}
