package migrate

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/tenant"
)

// Measurement is what each endpoint attests to before a single data
// byte moves: the tenant identity, its key-domain fingerprint, the pool
// geometry, the slice dimensions, and the endpoint's checkpoint epoch.
// The two measurements must agree on everything but the epoch — a
// destination with the wrong geometry would misparse the journal, a
// wrong key domain could never decrypt the ciphertext, and a wrong
// slice shape could not hold it. The epochs are compared directionally
// instead: the destination's epoch is the freshness floor the source's
// first commit must clear, which is what turns a replay of an older
// migration session into a typed ErrFreshness at the handshake.
type Measurement struct {
	TenantID string
	Domain   string
	Geometry config.Geometry
	Pages    int
	Frames   int
	Epoch    uint64
}

// Measure builds the attestation measurement of one tenant on one pool.
func Measure(p *tenant.Pool, t *tenant.Tenant) Measurement {
	return Measurement{
		TenantID: t.ID(),
		Domain:   t.Domain(),
		Geometry: p.Geometry(),
		Pages:    t.Pages(),
		Frames:   t.Frames(),
		Epoch:    t.Epoch(),
	}
}

// encode serialises the measurement deterministically for the
// handshake transcript hash. Length-prefixed strings keep distinct
// measurements from colliding under concatenation.
func (m Measurement) encode() []byte {
	var b []byte
	var tmp [8]byte
	str := func(s string) {
		binary.LittleEndian.PutUint64(tmp[:], uint64(len(s)))
		b = append(b, tmp[:]...)
		b = append(b, s...)
	}
	num := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		b = append(b, tmp[:]...)
	}
	str(m.TenantID)
	str(m.Domain)
	num(uint64(m.Geometry.SectorSize))
	num(uint64(m.Geometry.BlockSize))
	num(uint64(m.Geometry.ChunkSize))
	num(uint64(m.Geometry.PageSize))
	num(uint64(m.Pages))
	num(uint64(m.Frames))
	num(m.Epoch)
	return b
}

// Offer is the source's half of the handshake.
type Offer struct {
	Measurement Measurement
}

// Accept is the destination's half: its own measurement plus the
// session nonce that makes this session's MAC chain unique. The nonce
// is caller-seeded (deterministic-core discipline: no ambient
// randomness), typically derived from the campaign seed.
type Accept struct {
	Measurement Measurement
	Nonce       [32]byte
}

// checkMeasurements verifies the structural half of attestation: the
// two endpoints describe the same tenant, key domain, geometry, and
// slice shape. Every mismatch is typed ErrAttestation. The epoch
// direction is checked separately (freshness, not attestation).
func checkMeasurements(src, dst Measurement) error {
	switch {
	case src.TenantID != dst.TenantID:
		return fmt.Errorf("%w: tenant id %q vs %q", ErrAttestation, src.TenantID, dst.TenantID)
	case src.Domain != dst.Domain:
		return fmt.Errorf("%w: key domain %s vs %s", ErrAttestation, src.Domain, dst.Domain)
	case src.Geometry != dst.Geometry:
		return fmt.Errorf("%w: geometry %+v vs %+v", ErrAttestation, src.Geometry, dst.Geometry)
	case src.Pages != dst.Pages || src.Frames != dst.Frames:
		return fmt.Errorf("%w: slice %d pages/%d frames vs %d/%d",
			ErrAttestation, src.Pages, src.Frames, dst.Pages, dst.Frames)
	}
	return nil
}

// chainSeed derives the session MAC chain's starting value from the
// full handshake transcript under the tenant's migration key. Both
// endpoints compute it independently; an endpoint that saw a tampered
// offer, accept, or nonce seeds a divergent chain and every subsequent
// frame it checks fails ErrAttestation — handshake integrity is
// enforced retroactively by the stream itself.
func chainSeed(key []byte, offer Offer, accept Accept) [32]byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("salus-migrate-v1"))
	mac.Write(offer.Measurement.encode())
	mac.Write(accept.Measurement.encode())
	mac.Write(accept.Nonce[:])
	var out [32]byte
	mac.Sum(out[:0])
	return out
}
