package migrate

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/stats"
	"github.com/salus-sim/salus/internal/tenant"
)

// Receiver is the destination endpoint of one migration session. It
// verifies and buffers the stream but applies nothing until the cutover
// record verifies end to end — so a session aborted at any record
// boundary, for any reason, leaves the destination tenant exactly as it
// was. The receiver is fail-stop: the first typed rejection poisons the
// session and every later Feed returns the same error, which is what
// keeps an attacker from probing one stream position at a time.
type Receiver struct {
	pool  *tenant.Pool
	id    string
	key   []byte
	nonce [32]byte

	ch    *chain
	floor uint64 // lineage floor: newest epoch this destination trusts

	buf       []byte // verified journal bytes, applied only at cutover
	expect    int    // buf length the open round must reach
	roundOpen bool
	lastRound uint32
	lastRoot  securemem.TrustedRoot
	haveRoot  bool

	done   bool
	failed error
	ops    stats.MigrateOps
}

// NewReceiver prepares the destination endpoint for tenant id on pool.
// The nonce is the session-uniqueness secret the destination
// contributes to the handshake; campaigns derive it from the seed.
func NewReceiver(pool *tenant.Pool, id string, nonce [32]byte) (*Receiver, error) {
	if pool == nil {
		return nil, fmt.Errorf("%w: destination pool required", ErrConfig)
	}
	t, err := pool.Tenant(id)
	if err != nil {
		return nil, err
	}
	key, err := t.MigrationKey()
	if err != nil {
		return nil, err
	}
	return &Receiver{
		pool:  pool,
		id:    id,
		key:   key,
		nonce: nonce,
		ops:   stats.MigrateOps{Tenant: id},
	}, nil
}

// Accept judges the source's offer and, if it attests, returns the
// destination's half of the handshake and seeds the session MAC chain.
// A measurement mismatch is ErrAttestation; a source whose lineage is
// at or behind this destination's is ErrFreshness — replaying an old
// session's stream onto a destination that has since moved on is the
// rollback attack, refused before a single frame.
func (r *Receiver) Accept(offer Offer) (Accept, error) {
	t, err := r.pool.Tenant(r.id)
	if err != nil {
		return Accept{}, err
	}
	mine := Measure(r.pool, t)
	if err := checkMeasurements(offer.Measurement, mine); err != nil {
		r.failed = err
		r.classify(err)
		return Accept{}, err
	}
	if offer.Measurement.Epoch < mine.Epoch {
		err := fmt.Errorf("%w: source at epoch %d behind destination epoch %d",
			ErrFreshness, offer.Measurement.Epoch, mine.Epoch)
		r.failed = err
		r.classify(err)
		return Accept{}, err
	}
	acc := Accept{Measurement: mine, Nonce: r.nonce}
	r.floor = mine.Epoch
	r.ch = newChain(r.key, chainSeed(r.key, offer, acc))
	return acc, nil
}

// Feed verifies one stream frame at the current position and absorbs
// it. Every refusal is typed per the taxonomy in the package doc and
// poisons the session; no partial state is ever applied.
func (r *Receiver) Feed(frame []byte) error {
	if r.failed != nil {
		return r.failed
	}
	if r.ch == nil {
		return fmt.Errorf("%w: stream before handshake", ErrAttestation)
	}
	if r.done {
		return r.poison(fmt.Errorf("%w: frame after cutover", ErrReplay))
	}
	typ, payload, err := r.ch.open(frame)
	if err != nil {
		return r.poison(err)
	}
	switch typ {
	case frameRound:
		return r.feedRound(payload)
	case frameChunk:
		return r.feedChunk(payload)
	case frameCommit:
		return r.feedCommit(payload)
	case frameCutover:
		return r.feedCutover(payload)
	}
	return r.poison(fmt.Errorf("%w: unknown frame type %d", ErrTornStream, typ))
}

func (r *Receiver) feedRound(p []byte) error {
	if len(p) != 20 {
		return r.poison(fmt.Errorf("%w: round header %d bytes, want 20", ErrTornStream, len(p)))
	}
	if r.roundOpen {
		return r.poison(fmt.Errorf("%w: round header inside an open round", ErrTornStream))
	}
	round := binary.LittleEndian.Uint32(p[0:4])
	epoch := binary.LittleEndian.Uint64(p[4:12])
	dlen := binary.LittleEndian.Uint64(p[12:20])
	if round != r.lastRound+1 {
		return r.poison(fmt.Errorf("%w: round %d after round %d", ErrReplay, round, r.lastRound))
	}
	if epoch <= r.floor {
		return r.poison(fmt.Errorf("%w: round epoch %d at or below trusted epoch %d", ErrFreshness, epoch, r.floor))
	}
	if dlen > uint64(maxFramePayload)*(1<<12) {
		return r.poison(fmt.Errorf("%w: implausible round delta %d bytes", ErrTornStream, dlen))
	}
	r.lastRound = round
	r.expect = len(r.buf) + int(dlen)
	r.roundOpen = true
	return nil
}

func (r *Receiver) feedChunk(p []byte) error {
	if len(p) < 8 {
		return r.poison(fmt.Errorf("%w: chunk %d bytes, want >= 8", ErrTornStream, len(p)))
	}
	if !r.roundOpen {
		return r.poison(fmt.Errorf("%w: chunk outside a round", ErrTornStream))
	}
	off := binary.LittleEndian.Uint64(p[0:8])
	data := p[8:]
	if off != uint64(len(r.buf)) {
		return r.poison(fmt.Errorf("%w: chunk at offset %d, stream at %d", ErrTornStream, off, len(r.buf)))
	}
	if len(r.buf)+len(data) > r.expect {
		return r.poison(fmt.Errorf("%w: chunk overruns declared round delta", ErrTornStream))
	}
	r.buf = append(r.buf, data...)
	return nil
}

func (r *Receiver) feedCommit(p []byte) error {
	if !r.roundOpen {
		return r.poison(fmt.Errorf("%w: commit outside a round", ErrTornStream))
	}
	if len(r.buf) != r.expect {
		return r.poison(fmt.Errorf("%w: commit with %d of %d round bytes", ErrTornStream, len(r.buf), r.expect))
	}
	root, err := securemem.UnmarshalTrustedRoot(p)
	if err != nil {
		return r.poison(fmt.Errorf("%w: trusted root: %v", ErrTornStream, err))
	}
	if root.Epoch <= r.floor {
		return r.poison(fmt.Errorf("%w: commit epoch %d at or below trusted epoch %d", ErrFreshness, root.Epoch, r.floor))
	}
	r.floor = root.Epoch
	r.lastRoot = root
	r.haveRoot = true
	r.roundOpen = false
	return nil
}

func (r *Receiver) feedCutover(p []byte) error {
	if len(p) != 32 {
		return r.poison(fmt.Errorf("%w: cutover digest %d bytes, want 32", ErrTornStream, len(p)))
	}
	if r.roundOpen || !r.haveRoot {
		return r.poison(fmt.Errorf("%w: cutover before a committed round", ErrTornStream))
	}
	// The single apply point: everything upstream verified, so rebuild
	// the tenant and hold it to the attested digest.
	if err := r.pool.RecoverTenant(r.id, r.buf, r.lastRoot); err != nil {
		return r.poison(mapRecoverErr(err))
	}
	t, err := r.pool.Tenant(r.id)
	if err != nil {
		return r.poison(err)
	}
	if got := t.StateDigest(); !bytes.Equal(got[:], p) {
		return r.poison(fmt.Errorf("%w: applied state digest does not match attested digest", ErrAttestation))
	}
	r.done = true
	return nil
}

// Done reports whether the cutover applied.
func (r *Receiver) Done() bool { return r.done }

// Ops returns the receiver's typed-rejection counters.
func (r *Receiver) Ops() stats.MigrateOps { return r.ops }

// poison records the first typed rejection and latches it.
func (r *Receiver) poison(err error) error {
	r.failed = err
	r.classify(err)
	return err
}

func (r *Receiver) classify(err error) {
	classify(&r.ops, err)
}

// mapRecoverErr folds the recovery layer's taxonomy into the stream's:
// journal damage that survived framing is still a torn stream; a stale
// journal or replayed tree metadata is still a rollback.
func mapRecoverErr(err error) error {
	switch {
	case errors.Is(err, crash.ErrRollback), errors.Is(err, securemem.ErrFreshness):
		return fmt.Errorf("%w: %v", ErrFreshness, err)
	case errors.Is(err, securemem.ErrIntegrity):
		return fmt.Errorf("%w: %v", ErrAttestation, err)
	default:
		return fmt.Errorf("%w: %v", ErrTornStream, err)
	}
}
