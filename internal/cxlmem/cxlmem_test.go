package cxlmem

import (
	"testing"

	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

func TestBandwidthRatio(t *testing.T) {
	// 32 B/cycle link: 512 bytes take 16 cycles + latency.
	eng := sim.NewEngine()
	m := New(eng, 32, 1, 600, nil)
	var done sim.Cycle
	eng.At(0, func() { done = m.Access(512, stats.Data, nil) })
	eng.Run(0)
	if done != 616 {
		t.Errorf("done = %d, want 616", done)
	}
}

func TestFractionalBandwidth(t *testing.T) {
	// 1/2 byte per cycle: 64 bytes take 128 cycles.
	eng := sim.NewEngine()
	m := New(eng, 1, 2, 0, nil)
	var done sim.Cycle
	eng.At(0, func() { done = m.Access(64, stats.Data, nil) })
	eng.Run(0)
	if done != 128 {
		t.Errorf("done = %d, want 128", done)
	}
}

func TestLinkSerialisesTransfers(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, 32, 1, 100, nil)
	var d1, d2 sim.Cycle
	eng.At(0, func() {
		d1 = m.Access(320, stats.Data, nil) // 10 cycles
		d2 = m.Access(320, stats.Data, nil) // queued: +10
	})
	eng.Run(0)
	if d1 != 110 || d2 != 120 {
		t.Errorf("d1=%d d2=%d, want 110/120", d1, d2)
	}
	if m.BusyCycles() != 20 {
		t.Errorf("BusyCycles = %d, want 20", m.BusyCycles())
	}
}

func TestTrafficClasses(t *testing.T) {
	eng := sim.NewEngine()
	var tr stats.Traffic
	m := New(eng, 32, 1, 0, &tr)
	eng.At(0, func() {
		m.Access(256, stats.Data, nil)
		m.Access(32, stats.MAC, nil)
		m.Access(64, stats.BMT, nil)
	})
	eng.Run(0)
	if tr.Bytes(stats.CXL, stats.Data) != 256 ||
		tr.Bytes(stats.CXL, stats.MAC) != 32 ||
		tr.Bytes(stats.CXL, stats.BMT) != 64 {
		t.Errorf("traffic = %+v", tr)
	}
	if tr.SecurityBytes(stats.CXL) != 96 {
		t.Errorf("security bytes = %d, want 96", tr.SecurityBytes(stats.CXL))
	}
	if m.BytesServed() != 352 {
		t.Errorf("BytesServed = %d, want 352", m.BytesServed())
	}
}

func TestCallback(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, 1, 1, 9, nil)
	var at sim.Cycle
	eng.At(0, func() { m.Access(1, stats.Data, func() { at = eng.Now() }) })
	eng.Run(0)
	if at != 10 {
		t.Errorf("callback at %d, want 10", at)
	}
}

func TestUtilizationAndQueueDelay(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, 32, 1, 0, nil)
	var delay sim.Cycle
	eng.At(0, func() {
		m.Access(320, stats.Data, nil) // 10 cycles of link time
		delay = m.QueueDelay()
	})
	eng.At(20, func() {})
	eng.Run(0)
	if delay != 10 {
		t.Errorf("QueueDelay = %d, want 10", delay)
	}
	if got := m.Utilization(); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
}
