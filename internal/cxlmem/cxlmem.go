// Package cxlmem models the CXL type-3 expansion memory: a single logical
// device behind a bandwidth-limited link. Aggregate link bandwidth is a
// rational fraction of the device-memory aggregate bandwidth (1/16th by
// default, comparable to PCIe 5.0 ×16), and every access pays a fixed
// link + media latency that exceeds the local device memory's.
package cxlmem

import (
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

// Memory is the CXL-attached expansion memory.
type Memory struct {
	link    *sim.Server
	traffic *stats.Traffic
}

// New creates the expansion memory. Bandwidth is bwNum/bwDen bytes per
// cycle; latency is the fixed per-access round-trip cost in cycles.
func New(eng *sim.Engine, bwNum, bwDen, latency uint64, tr *stats.Traffic) *Memory {
	// Server's rate parameters are cycles-per-unit, the reciprocal of
	// bytes-per-cycle.
	return &Memory{
		link:    sim.NewServer(eng, bwDen, bwNum, sim.Cycle(latency)),
		traffic: tr,
	}
}

// Access submits a transfer of the given size and class over the link and
// schedules done (may be nil) at completion.
func (m *Memory) Access(bytes uint64, class stats.Class, done func()) sim.Cycle {
	if m.traffic != nil {
		m.traffic.Add(stats.CXL, class, bytes)
	}
	return m.link.Submit(bytes, done)
}

// BusyCycles returns cycles the link spent transferring.
func (m *Memory) BusyCycles() uint64 { return uint64(m.link.BusyCycles()) }

// BytesServed returns total bytes moved over the link.
func (m *Memory) BytesServed() uint64 { return m.link.UnitsServed() }

// Utilization returns link utilisation (0..1).
func (m *Memory) Utilization() float64 { return m.link.Utilization() }

// QueueDelay returns the current link queueing delay.
func (m *Memory) QueueDelay() sim.Cycle { return m.link.QueueDelay() }
