package experiments

import (
	"fmt"
	"sort"

	"github.com/salus-sim/salus/internal/trace"
)

// ChannelCoverage characterises every workload by the property the paper
// uses to explain Fig. 10: how many of a page's interleaving chunks — and
// therefore how many memory channels — are touched while the page is
// resident. Workloads whose pages leave the device memory with under half
// of their channels touched (NW, B+tree, Lava) benefit the most from
// fetch-only-on-access and dirty tracking; dense sweeps that touch every
// channel (Backprop, Sgemm) benefit the least.
func ChannelCoverage(s Settings) (*FigResult, error) {
	geo := s.Cfg.Geometry
	tgeo := trace.Geometry{SectorSize: geo.SectorSize, ChunkSize: geo.ChunkSize, PageSize: geo.PageSize}
	chunksPerPage := geo.ChunksPerPage()

	res := &FigResult{Name: "Workload characterisation — chunks (channels) touched per page visit", Summary: map[string]float64{}}
	res.Table.Header = []string{"workload", "mean chunks/page", "of", "<=half channels", "write fraction"}

	type row struct {
		name      string
		mean      float64
		underHalf bool
		writes    float64
	}
	var rows []row
	for _, w := range s.Workloads {
		st, err := w.NewStream(tgeo, 0, 1, 60000)
		if err != nil {
			return nil, err
		}
		// A "visit" ends when the stream moves to a different page; the
		// sequential construction of visits in the generator makes this an
		// exact reconstruction of per-visit chunk coverage.
		var (
			curPage  = uint64(1 << 63)
			chunks   = map[uint64]bool{}
			visits   int
			chunkSum int
			writes   int
			accesses int
		)
		flush := func() {
			if len(chunks) > 0 {
				visits++
				chunkSum += len(chunks)
				chunks = map[uint64]bool{}
			}
		}
		for {
			a, ok := st.Next()
			if !ok {
				break
			}
			accesses++
			if a.Write {
				writes++
			}
			pg := a.Addr / uint64(geo.PageSize)
			if pg != curPage {
				flush()
				curPage = pg
			}
			chunks[a.Addr/uint64(geo.ChunkSize)] = true
		}
		flush()
		if visits == 0 {
			return nil, fmt.Errorf("experiments: workload %s produced no page visits", w.Name)
		}
		mean := float64(chunkSum) / float64(visits)
		rows = append(rows, row{
			name:      w.Name,
			mean:      mean,
			underHalf: mean <= float64(chunksPerPage)/2,
			writes:    float64(writes) / float64(accesses),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].mean < rows[j].mean })
	for _, r := range rows {
		half := "no"
		if r.underHalf {
			half = "yes"
		}
		res.Table.AddRow(r.name, fmt.Sprintf("%.2f", r.mean),
			fmt.Sprintf("%d", chunksPerPage), half, fmt.Sprintf("%.2f", r.writes))
		res.Summary[r.name] = r.mean
	}
	return res, nil
}
