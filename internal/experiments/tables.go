package experiments

import (
	"fmt"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/stats"
	"github.com/salus-sim/salus/internal/system"
	"github.com/salus-sim/salus/internal/trace"
)

// Table1 renders the baseline system configuration (the paper's Table I):
// the Volta-like GPU, the two memory tiers, and their bandwidth relation.
func Table1(cfg config.Config) *FigResult {
	res := &FigResult{Name: "Table I — baseline system configuration", Summary: map[string]float64{}}
	res.Table.Header = []string{"parameter", "value"}
	num, den := cfg.Memory.CXLBytesPerCycleRational()
	rows := [][2]string{
		{"SMs", fmt.Sprintf("%d (%d GPCs of %d)", cfg.GPU.NumSMs, cfg.GPU.GPCs(), cfg.GPU.SMsPerGPC)},
		{"warps per SM", fmt.Sprintf("%d", cfg.GPU.WarpsPerSM)},
		{"max outstanding per SM", fmt.Sprintf("%d", cfg.GPU.MaxOutstanding)},
		{"L2 per partition", fmt.Sprintf("%d KiB, %d-way, %d MSHRs, %d-cycle hit", cfg.GPU.L2KBPerPartition, cfg.GPU.L2Ways, cfg.GPU.L2MSHRs, cfg.GPU.L2Latency)},
		{"device memory channels", fmt.Sprintf("%d", cfg.Memory.DeviceChannels)},
		{"device bandwidth", fmt.Sprintf("%d B/cycle/channel (%d B/cycle aggregate)", cfg.Memory.DeviceBytesPerCycle, cfg.Memory.DeviceAggregateBytesPerCycle())},
		{"device latency", fmt.Sprintf("%d cycles", cfg.Memory.DeviceLatency)},
		{"CXL bandwidth", fmt.Sprintf("%d/%d of device aggregate (%.1f B/cycle)", cfg.Memory.CXLRatioNum, cfg.Memory.CXLRatioDen, float64(num)/float64(den))},
		{"CXL latency", fmt.Sprintf("%d cycles", cfg.Memory.CXLLatency)},
		{"device memory holds", fmt.Sprintf("%.0f%% of application footprint", cfg.Memory.DeviceFootprintRatio*100)},
		{"interleaving granularity", fmt.Sprintf("%d B chunks", cfg.Geometry.ChunkSize)},
		{"page size", fmt.Sprintf("%d B", cfg.Geometry.PageSize)},
	}
	for _, row := range rows {
		res.Table.AddRow(row[0], row[1])
	}
	return res
}

// Table2 renders the metadata caches and security configuration (the
// paper's Table II).
func Table2(cfg config.Config) *FigResult {
	res := &FigResult{Name: "Table II — metadata caches and security configuration", Summary: map[string]float64{}}
	res.Table.Header = []string{"parameter", "value"}
	sec := cfg.Security
	rows := [][2]string{
		{"MAC cache", fmt.Sprintf("%d KiB per memory partition", sec.MACCacheKB)},
		{"counter cache", fmt.Sprintf("%d KiB per partition, %d-way sectored", sec.CounterCacheKB, sec.MetaCacheWays)},
		{"BMT cache", fmt.Sprintf("%d KiB per partition", sec.BMTCacheKB)},
		{"metadata MSHRs", fmt.Sprintf("%d, allocate-on-fill", sec.MetaCacheMSHRs)},
		{"MAC length", fmt.Sprintf("%d bits", sec.MACBits)},
		{"MAC latency", fmt.Sprintf("%d cycles", sec.MACLatency)},
		{"encryption engine", fmt.Sprintf("1 pipelined AES per partition, %d-cycle latency", sec.AESLatency)},
		{"mapping cache", fmt.Sprintf("%d entries per GPC", sec.MappingCacheEntries)},
		{"dirty-bitmask buffer", fmt.Sprintf("%d entries", sec.DirtyBufferEntries)},
	}
	for _, row := range rows {
		res.Table.AddRow(row[0], row[1])
	}
	return res
}

// WorkloadTable summarises the synthetic workload suite, the stand-in for
// the paper's benchmark selection.
func WorkloadTable(s Settings) *FigResult {
	res := &FigResult{Name: "Workload suite (synthetic stand-ins)", Summary: map[string]float64{}}
	res.Table.Header = []string{"workload", "footprint", "coverage", "writes", "compute/mem", "pattern"}
	for _, w := range s.Workloads {
		res.Table.AddRow(w.Name,
			fmt.Sprintf("%d MiB", w.FootprintBytes>>20),
			fmt.Sprintf("%.2f", w.PageCoverage),
			fmt.Sprintf("%.2f", w.WriteFraction),
			fmt.Sprintf("%d", w.ComputePerMem),
			w.Pattern.String())
	}
	return res
}

// TrafficBreakdown reports per-class traffic for one workload under every
// model — the debugging view behind Figs. 11 and 12.
func (r *Runner) TrafficBreakdown(workload string) (*FigResult, error) {
	var w, ok = findWorkload(r.Settings, workload)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", workload)
	}
	res := &FigResult{Name: "Traffic breakdown — " + workload, Summary: map[string]float64{}}
	res.Table.Header = []string{"model", "tier", "data B", "counter B", "mac B", "bmt B", "mapping B"}
	for _, m := range []system.Model{system.ModelNone, system.ModelBaseline, system.ModelSalus} {
		run, err := r.run(w, m, vPlain, r.Settings.Cfg)
		if err != nil {
			return nil, err
		}
		for _, tier := range []stats.Tier{stats.Device, stats.CXL} {
			res.Table.AddRow(m.String(), tier.String(),
				fmt.Sprintf("%d", run.Traffic.Bytes(tier, stats.Data)),
				fmt.Sprintf("%d", run.Traffic.Bytes(tier, stats.Counter)),
				fmt.Sprintf("%d", run.Traffic.Bytes(tier, stats.MAC)),
				fmt.Sprintf("%d", run.Traffic.Bytes(tier, stats.BMT)),
				fmt.Sprintf("%d", run.Traffic.Bytes(tier, stats.Mapping)))
		}
	}
	return res, nil
}

func findWorkload(s Settings, name string) (w trace.Params, ok bool) {
	for _, p := range s.Workloads {
		if p.Name == name {
			return p, true
		}
	}
	return w, false
}
