package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Format selects how FigResults are rendered for output.
type Format int

const (
	// Text renders aligned human-readable tables (the default).
	Text Format = iota
	// JSON renders one self-describing JSON document per result.
	JSON
	// CSV renders the table rows as comma-separated values with a header,
	// plus summary rows prefixed with "#" — convenient for plotting.
	CSV
)

// ParseFormat maps a flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "text":
		return Text, nil
	case "json":
		return JSON, nil
	case "csv":
		return CSV, nil
	}
	return Text, fmt.Errorf("experiments: unknown format %q (want text, json, or csv)", s)
}

// jsonResult is the wire form of a FigResult.
type jsonResult struct {
	Name    string             `json:"name"`
	Columns []string           `json:"columns"`
	Rows    [][]string         `json:"rows"`
	Summary map[string]float64 `json:"summary,omitempty"`
}

// Render serialises the result in the requested format.
func (f *FigResult) Render(format Format) (string, error) {
	switch format {
	case Text:
		return f.String(), nil
	case JSON:
		out, err := json.MarshalIndent(jsonResult{
			Name:    f.Name,
			Columns: f.Table.Header,
			Rows:    f.Table.Rows,
			Summary: f.Summary,
		}, "", "  ")
		if err != nil {
			return "", err
		}
		return string(out) + "\n", nil
	case CSV:
		var b strings.Builder
		fmt.Fprintf(&b, "# %s\n", f.Name)
		b.WriteString(csvRow(f.Table.Header))
		for _, row := range f.Table.Rows {
			b.WriteString(csvRow(row))
		}
		for _, k := range sortedKeys(f.Summary) {
			fmt.Fprintf(&b, "# %s,%g\n", csvEscape(k), f.Summary[k])
		}
		return b.String(), nil
	}
	return "", fmt.Errorf("experiments: unknown format %d", format)
}

func csvRow(cells []string) string {
	escaped := make([]string, len(cells))
	for i, c := range cells {
		escaped[i] = csvEscape(c)
	}
	return strings.Join(escaped, ",") + "\n"
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
