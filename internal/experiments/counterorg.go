package experiments

import (
	"fmt"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/metrics"
	"github.com/salus-sim/salus/internal/secsim"
	"github.com/salus-sim/salus/internal/stats"
	"github.com/salus-sim/salus/internal/system"
	"github.com/salus-sim/salus/internal/trace"
)

// CounterOrganisation is an extension study grounded in the paper's
// background (§II-A1): it compares three counter organisations for the
// location-coupled model — SGX-style monolithic 64-bit counters, the
// split-counter design of prior GPU work, and Salus — on normalised IPC
// and total security traffic. Monolithic counters multiply the counter
// footprint by 8, deepening the trees and inflating every migration's
// metadata bill; split counters were the state of the art Salus starts
// from.
func (r *Runner) CounterOrganisation() (*FigResult, error) {
	cfg := r.Settings.Cfg
	none, err := r.suiteRuns(system.ModelNone, vPlain, cfg)
	if err != nil {
		return nil, err
	}

	type variantRun struct {
		label string
		runs  []*stats.Run
	}
	var rows []variantRun

	mono := variantRun{label: "conventional, monolithic counters (SGX-style)"}
	for _, w := range r.Settings.Workloads {
		run, err := r.runMono(w, cfg)
		if err != nil {
			return nil, err
		}
		mono.runs = append(mono.runs, run)
	}
	rows = append(rows, mono)

	split, err := r.suiteRuns(system.ModelBaseline, vPlain, cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, variantRun{label: "conventional, split counters (PSSM-style)", runs: split})

	sal, err := r.suiteRuns(system.ModelSalus, vPlain, cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, variantRun{label: "salus (interleaving-friendly + collapsed)", runs: sal})

	res := &FigResult{Name: "Extension — counter organisation study", Summary: map[string]float64{}}
	res.Table.Header = []string{"organisation", "geomean IPC vs no-security", "security MB"}
	for _, row := range rows {
		var norm []float64
		var secBytes float64
		for i, run := range row.runs {
			norm = append(norm, run.IPC()/none[i].IPC())
			secBytes += float64(run.Traffic.TotalSecurityBytes())
		}
		gm, err := metrics.Geomean(norm)
		if err != nil {
			return nil, err
		}
		res.Table.AddRow(row.label, fmt.Sprintf("%.3f", gm), fmt.Sprintf("%.2f", secBytes/(1<<20)))
		res.Summary[row.label] = gm
	}
	return res, nil
}

// runMono runs one workload under the monolithic-counter baseline.
func (r *Runner) runMono(w trace.Params, cfg config.Config) (*stats.Run, error) {
	key := runKey{workload: w.Name, model: system.ModelBaseline, variant: vPlain,
		cxlNum: cfg.Memory.CXLRatioNum, cxlDen: cfg.Memory.CXLRatioDen,
		ratio: cfg.Memory.DeviceFootprintRatio, tag: "mono"}
	if got, ok := r.cache[key]; ok {
		return got, nil
	}
	out, err := system.Run(system.Options{
		Cfg:          cfg,
		Workload:     w,
		Model:        system.ModelBaseline,
		MaxAccesses:  r.Settings.MaxAccesses,
		CycleLimit:   r.Settings.CycleLimit,
		TuneBaseline: func(b *secsim.Baseline) { b.SetMonolithicCounters(true) },
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/mono: %w", w.Name, err)
	}
	r.cache[key] = out
	return out, nil
}
