package experiments

import (
	"fmt"

	"github.com/salus-sim/salus/internal/metrics"
	"github.com/salus-sim/salus/internal/system"
)

// SeedStability re-runs the headline comparison (Fig. 10's geomean IPC
// improvement of Salus over conventional) under nSeeds different workload
// randomisations and reports the per-seed values with their spread. The
// paper reports single numbers from fixed benchmark binaries; since our
// workloads are synthetic, this study quantifies how much of the measured
// improvement is workload-noise versus mechanism.
func (r *Runner) SeedStability(nSeeds int) (*FigResult, error) {
	if nSeeds < 2 {
		return nil, fmt.Errorf("experiments: seed stability needs >= 2 seeds, got %d", nSeeds)
	}
	res := &FigResult{Name: "Extension — seed stability of the headline improvement", Summary: map[string]float64{}}
	res.Table.Header = []string{"seed set", "geomean improvement %"}
	var values []float64
	for seed := 0; seed < nSeeds; seed++ {
		var imps []float64
		for _, w := range r.Settings.Workloads {
			ws := w
			ws.Seed += int64(seed) * 7919 // distinct PRNG streams per seed set
			tag := fmt.Sprintf("seed%d", seed)
			base, err := r.runTagged(ws, system.ModelBaseline, vPlain, r.Settings.Cfg, tag)
			if err != nil {
				return nil, err
			}
			sal, err := r.runTagged(ws, system.ModelSalus, vPlain, r.Settings.Cfg, tag)
			if err != nil {
				return nil, err
			}
			imps = append(imps, float64(base.Cycles)/float64(sal.Cycles))
		}
		gm, err := metrics.Geomean(imps)
		if err != nil {
			return nil, err
		}
		v := metrics.ImprovementPct(gm)
		values = append(values, v)
		res.Table.AddRow(fmt.Sprintf("seeds+%d", seed*7919), fmt.Sprintf("%.2f", v))
	}
	res.Summary["mean improvement %"] = metrics.Mean(values)
	res.Summary["min improvement %"] = metrics.Min(values)
	res.Summary["max improvement %"] = metrics.Max(values)
	res.Summary["spread (max-min) pp"] = metrics.Max(values) - metrics.Min(values)
	return res, nil
}
