// Package experiments regenerates every table and figure of the paper's
// evaluation: the motivation slowdown (Fig. 3), the headline IPC comparison
// (Fig. 10), security traffic (Fig. 11), bandwidth utilisation (Fig. 12),
// the CXL-bandwidth sensitivity sweep (Fig. 13), the device-footprint
// sensitivity sweep (Fig. 14), the configuration tables (I and II), and an
// ablation study over Salus's individual mechanisms.
//
// A Runner memoises simulation runs, so figures that share configurations
// (10, 11, and 12 all use the default suite) reuse the same simulations.
package experiments

import (
	"fmt"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/metrics"
	"github.com/salus-sim/salus/internal/secsim"
	"github.com/salus-sim/salus/internal/stats"
	"github.com/salus-sim/salus/internal/system"
	"github.com/salus-sim/salus/internal/trace"
)

// Short aliases for the tuned engine types.
type (
	secsimBaseline = secsim.Baseline
	secsimSalus    = secsim.Salus
)

// Settings size the experiment campaign.
type Settings struct {
	Cfg         config.Config
	Workloads   []trace.Params
	MaxAccesses int    // per run, split over SMs
	CycleLimit  uint64 // safety net
}

// Default returns the settings used by the bench harness: the full
// 14-workload suite on the paper's configuration, scaled to finish in
// minutes.
func Default() Settings {
	return Settings{
		Cfg:         config.Default(),
		Workloads:   trace.Suite(),
		MaxAccesses: 60000,
		CycleLimit:  2_000_000_000,
	}
}

// Quick returns reduced settings for unit tests and smoke runs: the same
// machine as Default (shrinking the GPU would change the latency-hiding
// regime and distort the model comparison) but a 6-workload subset and
// shorter streams.
func Quick() Settings {
	cfg := config.Default()
	var subset []trace.Params
	for _, name := range []string{"backprop", "bfs", "btree", "nw", "sgemm", "stencil"} {
		p, ok := trace.ByName(name)
		if !ok {
			panic("experiments: missing suite workload " + name)
		}
		subset = append(subset, p)
	}
	return Settings{
		Cfg:         cfg,
		Workloads:   subset,
		MaxAccesses: 20000,
		CycleLimit:  500_000_000,
	}
}

// variant distinguishes memoised run flavours beyond the model.
type variant int

const (
	vPlain variant = iota
	vNoMoveOverhead
	vAblCounters // interleaving-friendly counters only
	vAblCollapse // + collapsed checkpointed counters
	vAblFetch    // + fetch-on-access
)

type runKey struct {
	workload string
	model    system.Model
	variant  variant
	cxlNum   uint64
	cxlDen   uint64
	ratio    float64
	tag      string // extra discriminator for config sweeps beyond ratio/bandwidth
}

// Runner executes and memoises simulation runs.
type Runner struct {
	Settings Settings
	cache    map[runKey]*stats.Run
	// Progress, when non-nil, receives a line per completed simulation.
	Progress func(string)
}

// NewRunner builds a Runner over the given settings.
func NewRunner(s Settings) *Runner {
	return &Runner{Settings: s, cache: make(map[runKey]*stats.Run)}
}

func (r *Runner) run(w trace.Params, model system.Model, v variant, cfg config.Config) (*stats.Run, error) {
	return r.runTagged(w, model, v, cfg, "")
}

// runWithKey runs a plain-variant simulation under a modified config,
// using tag to keep it distinct in the memoisation cache.
func (r *Runner) runWithKey(w trace.Params, model system.Model, cfg config.Config, tag string) (*stats.Run, error) {
	return r.runTagged(w, model, vPlain, cfg, tag)
}

func (r *Runner) runTagged(w trace.Params, model system.Model, v variant, cfg config.Config, tag string) (*stats.Run, error) {
	key := runKey{
		workload: w.Name, model: model, variant: v,
		cxlNum: cfg.Memory.CXLRatioNum, cxlDen: cfg.Memory.CXLRatioDen,
		ratio: cfg.Memory.DeviceFootprintRatio, tag: tag,
	}
	if got, ok := r.cache[key]; ok {
		return got, nil
	}
	opts := system.Options{
		Cfg:         cfg,
		Workload:    w,
		Model:       model,
		MaxAccesses: r.Settings.MaxAccesses,
		CycleLimit:  r.Settings.CycleLimit,
	}
	switch v {
	case vNoMoveOverhead:
		opts.TuneBaseline = func(b *secsimBaseline) { b.SkipRelocationWork = true }
	case vAblCounters:
		opts.Tune = func(s *secsimSalus) { s.CollapseCounters, s.FetchOnAccess, s.DirtyTracking = false, false, false }
	case vAblCollapse:
		opts.Tune = func(s *secsimSalus) { s.FetchOnAccess, s.DirtyTracking = false, false }
	case vAblFetch:
		opts.Tune = func(s *secsimSalus) { s.DirtyTracking = false }
	}
	out, err := system.Run(opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", w.Name, model, err)
	}
	r.cache[key] = out
	if r.Progress != nil {
		r.Progress(fmt.Sprintf("done %-12s %-9s v=%d ipc=%.4f", w.Name, model, v, out.IPC()))
	}
	return out, nil
}

// suiteRuns executes the whole workload suite for one (model, variant)
// under cfg, returning runs in workload order.
func (r *Runner) suiteRuns(model system.Model, v variant, cfg config.Config) ([]*stats.Run, error) {
	var out []*stats.Run
	for _, w := range r.Settings.Workloads {
		run, err := r.run(w, model, v, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, run)
	}
	return out, nil
}

// FigResult is one regenerated figure: a table of per-workload rows plus
// the summary statistics the paper quotes.
type FigResult struct {
	Name    string
	Table   stats.Table
	Summary map[string]float64
}

// String renders the figure result.
func (f *FigResult) String() string {
	s := "== " + f.Name + " ==\n" + f.Table.String()
	for _, k := range sortedKeys(f.Summary) {
		s += fmt.Sprintf("%s: %.4g\n", k, f.Summary[k])
	}
	return s
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Fig3 regenerates the motivation result: the slowdown of conventional
// security with dynamic page migration relative to a hypothetical system
// whose security has no data-movement overheads. The paper reports 2.04×.
func (r *Runner) Fig3() (*FigResult, error) {
	cfg := r.Settings.Cfg
	full, err := r.suiteRuns(system.ModelBaseline, vPlain, cfg)
	if err != nil {
		return nil, err
	}
	noMove, err := r.suiteRuns(system.ModelBaseline, vNoMoveOverhead, cfg)
	if err != nil {
		return nil, err
	}
	res := &FigResult{Name: "Fig. 3 — slowdown of location-coupled security under page migration", Summary: map[string]float64{}}
	res.Table.Header = []string{"workload", "slowdown (conventional / no-movement-overhead)"}
	var slowdowns []float64
	for i := range full {
		sd := float64(full[i].Cycles) / float64(noMove[i].Cycles)
		slowdowns = append(slowdowns, sd)
		res.Table.AddRow(full[i].Workload, fmt.Sprintf("%.3f", sd))
	}
	gm, err := metrics.Geomean(slowdowns)
	if err != nil {
		return nil, err
	}
	res.Summary["geomean slowdown (paper: 2.04)"] = gm
	res.Summary["max slowdown"] = metrics.Max(slowdowns)
	return res, nil
}

// Fig10 regenerates the headline result: IPC of the conventional model and
// Salus, both normalised to a no-security system. The paper reports a
// geomean improvement of 29.94% (up to 190.43%).
func (r *Runner) Fig10() (*FigResult, error) {
	cfg := r.Settings.Cfg
	return r.fig10At(cfg, "Fig. 10 — normalised IPC (conventional vs Salus)")
}

func (r *Runner) fig10At(cfg config.Config, name string) (*FigResult, error) {
	none, err := r.suiteRuns(system.ModelNone, vPlain, cfg)
	if err != nil {
		return nil, err
	}
	base, err := r.suiteRuns(system.ModelBaseline, vPlain, cfg)
	if err != nil {
		return nil, err
	}
	sal, err := r.suiteRuns(system.ModelSalus, vPlain, cfg)
	if err != nil {
		return nil, err
	}
	res := &FigResult{Name: name, Summary: map[string]float64{}}
	res.Table.Header = []string{"workload", "conventional", "salus", "salus/conventional"}
	var improvements []float64
	for i := range none {
		bn := base[i].IPC() / none[i].IPC()
		sn := sal[i].IPC() / none[i].IPC()
		improvements = append(improvements, sn/bn)
		res.Table.AddRow(none[i].Workload,
			fmt.Sprintf("%.3f", bn), fmt.Sprintf("%.3f", sn), fmt.Sprintf("%.3f", sn/bn))
	}
	gm, err := metrics.Geomean(improvements)
	if err != nil {
		return nil, err
	}
	res.Summary["geomean improvement %% (paper: 29.94)"] = metrics.ImprovementPct(gm)
	res.Summary["max improvement %% (paper: 190.43)"] = metrics.ImprovementPct(metrics.Max(improvements))
	return res, nil
}

// Fig11 regenerates the security-traffic comparison: bytes of security
// metadata moved by Salus, normalised to the conventional model. The paper
// reports a mean of 47.79% (i.e. a 52.03% reduction), as low as 17.71%.
func (r *Runner) Fig11() (*FigResult, error) {
	cfg := r.Settings.Cfg
	base, err := r.suiteRuns(system.ModelBaseline, vPlain, cfg)
	if err != nil {
		return nil, err
	}
	sal, err := r.suiteRuns(system.ModelSalus, vPlain, cfg)
	if err != nil {
		return nil, err
	}
	res := &FigResult{Name: "Fig. 11 — security traffic normalised to conventional", Summary: map[string]float64{}}
	res.Table.Header = []string{"workload", "conventional B", "salus B", "normalised"}
	var normalised []float64
	for i := range base {
		bb := float64(base[i].Traffic.TotalSecurityBytes())
		sb := float64(sal[i].Traffic.TotalSecurityBytes())
		n := sb / bb
		normalised = append(normalised, n)
		res.Table.AddRow(base[i].Workload,
			fmt.Sprintf("%.0f", bb), fmt.Sprintf("%.0f", sb), fmt.Sprintf("%.3f", n))
	}
	res.Summary["mean normalised traffic (paper: 0.4779)"] = metrics.Mean(normalised)
	res.Summary["min normalised traffic (paper: 0.1771)"] = metrics.Min(normalised)
	return res, nil
}

// Fig12 regenerates the bandwidth-utilisation comparison: the share of
// each memory's bandwidth consumed by security traffic, for both models.
// The paper reports Salus using 14.92% less of the CXL bandwidth and 2.05%
// less of the device bandwidth than the conventional design.
func (r *Runner) Fig12() (*FigResult, error) {
	cfg := r.Settings.Cfg
	base, err := r.suiteRuns(system.ModelBaseline, vPlain, cfg)
	if err != nil {
		return nil, err
	}
	sal, err := r.suiteRuns(system.ModelSalus, vPlain, cfg)
	if err != nil {
		return nil, err
	}
	cxlNum, cxlDen := cfg.Memory.CXLBytesPerCycleRational()
	cxlBW := float64(cxlNum) / float64(cxlDen)
	devBW := float64(cfg.Memory.DeviceAggregateBytesPerCycle())

	secUtil := func(run *stats.Run, tier stats.Tier, bw float64) float64 {
		if run.Cycles == 0 {
			return 0
		}
		return float64(run.Traffic.SecurityBytes(tier)) / float64(run.Cycles) / bw
	}
	res := &FigResult{Name: "Fig. 12 — security share of memory bandwidth", Summary: map[string]float64{}}
	res.Table.Header = []string{"workload", "cxl conv", "cxl salus", "dev conv", "dev salus"}
	var dCXL, dDev []float64
	for i := range base {
		bc := secUtil(base[i], stats.CXL, cxlBW)
		sc := secUtil(sal[i], stats.CXL, cxlBW)
		bd := secUtil(base[i], stats.Device, devBW)
		sd := secUtil(sal[i], stats.Device, devBW)
		dCXL = append(dCXL, (bc-sc)*100)
		dDev = append(dDev, (bd-sd)*100)
		res.Table.AddRow(base[i].Workload,
			fmt.Sprintf("%.3f", bc), fmt.Sprintf("%.3f", sc),
			fmt.Sprintf("%.4f", bd), fmt.Sprintf("%.4f", sd))
	}
	res.Summary["mean CXL utilisation saved, pp (paper: 14.92)"] = metrics.Mean(dCXL)
	res.Summary["mean device utilisation saved, pp (paper: 2.05)"] = metrics.Mean(dDev)
	return res, nil
}

// Fig13 regenerates the CXL-bandwidth sensitivity sweep: the geomean IPC
// improvement of Salus over the conventional model at CXL bandwidths of
// 1/32, 1/16, 1/8, and 1/4 of the device bandwidth. The paper reports
// 32.79%, 29.94%, 32.90%, and 21.76%.
func (r *Runner) Fig13() (*FigResult, error) {
	ratios := [][2]uint64{{1, 32}, {1, 16}, {1, 8}, {1, 4}}
	paper := []float64{32.79, 29.94, 32.90, 21.76}
	res := &FigResult{Name: "Fig. 13 — sensitivity to CXL bandwidth", Summary: map[string]float64{}}
	res.Table.Header = []string{"cxl bw ratio", "geomean improvement %", "paper %"}
	for i, ratio := range ratios {
		cfg := r.Settings.Cfg.WithCXLRatio(ratio[0], ratio[1])
		sub, err := r.fig10At(cfg, "")
		if err != nil {
			return nil, err
		}
		imp := sub.Summary["geomean improvement %% (paper: 29.94)"]
		res.Table.AddRow(fmt.Sprintf("1/%d", ratio[1]),
			fmt.Sprintf("%.2f", imp), fmt.Sprintf("%.2f", paper[i]))
		res.Summary[fmt.Sprintf("improvement %% at 1/%d", ratio[1])] = imp
	}
	return res, nil
}

// Fig14 regenerates the footprint sensitivity sweep: the geomean IPC
// improvement at device-memory-to-footprint ratios of 20%, 35%, and 50%.
// The paper reports 51.64%, 34.48%, and 26.83% — more of the footprint
// resident means fewer migrations and a smaller win.
func (r *Runner) Fig14() (*FigResult, error) {
	ratios := []float64{0.20, 0.35, 0.50}
	paper := []float64{51.64, 34.48, 26.83}
	res := &FigResult{Name: "Fig. 14 — sensitivity to device-memory/footprint ratio", Summary: map[string]float64{}}
	res.Table.Header = []string{"footprint ratio", "geomean improvement %", "paper %"}
	for i, ratio := range ratios {
		cfg := r.Settings.Cfg.WithFootprintRatio(ratio)
		sub, err := r.fig10At(cfg, "")
		if err != nil {
			return nil, err
		}
		imp := sub.Summary["geomean improvement %% (paper: 29.94)"]
		res.Table.AddRow(fmt.Sprintf("%.0f%%", ratio*100),
			fmt.Sprintf("%.2f", imp), fmt.Sprintf("%.2f", paper[i]))
		res.Summary[fmt.Sprintf("improvement %% at %.0f%%", ratio*100)] = imp
	}
	return res, nil
}

// Ablation isolates Salus's mechanisms cumulatively: interleaving-friendly
// counters alone, + collapsed checkpointed counters, + fetch-on-access,
// + fine-grained dirty tracking (= full Salus). Each row is the geomean
// IPC improvement over the conventional model.
func (r *Runner) Ablation() (*FigResult, error) {
	cfg := r.Settings.Cfg
	base, err := r.suiteRuns(system.ModelBaseline, vPlain, cfg)
	if err != nil {
		return nil, err
	}
	steps := []struct {
		label string
		v     variant
	}{
		{"interleaving-friendly counters", vAblCounters},
		{"+ collapsed checkpointed counters", vAblCollapse},
		{"+ fetch-only-on-access", vAblFetch},
		{"+ fine-grained dirty tracking (full Salus)", vPlain},
	}
	res := &FigResult{Name: "Ablation — cumulative Salus mechanisms", Summary: map[string]float64{}}
	res.Table.Header = []string{"configuration", "geomean improvement %", "security traffic vs conventional"}
	for _, st := range steps {
		runs, err := r.suiteRuns(system.ModelSalus, st.v, cfg)
		if err != nil {
			return nil, err
		}
		var imps, traffics []float64
		for i := range runs {
			imps = append(imps, float64(base[i].Cycles)/float64(runs[i].Cycles))
			bb := float64(base[i].Traffic.TotalSecurityBytes())
			if bb > 0 {
				traffics = append(traffics, float64(runs[i].Traffic.TotalSecurityBytes())/bb)
			}
		}
		gm, err := metrics.Geomean(imps)
		if err != nil {
			return nil, err
		}
		res.Table.AddRow(st.label,
			fmt.Sprintf("%.2f", metrics.ImprovementPct(gm)),
			fmt.Sprintf("%.3f", metrics.Mean(traffics)))
		res.Summary[st.label] = metrics.ImprovementPct(gm)
	}
	return res, nil
}
