package experiments

import (
	"fmt"

	"github.com/salus-sim/salus/internal/metrics"
	"github.com/salus-sim/salus/internal/system"
)

// MetaCacheSensitivity is an extension study beyond the paper's figures:
// it sweeps the per-partition metadata cache sizes (counter, MAC, and BMT
// caches together, scaled by a common factor) and reports the geomean IPC
// improvement of Salus over the conventional model at each point. The
// paper fixes these at Table II's values; the sweep shows how much of
// Salus's advantage persists when the baseline is given much larger
// metadata caches (its migration traffic is compulsory, so caches cannot
// remove it).
func (r *Runner) MetaCacheSensitivity() (*FigResult, error) {
	scales := []struct {
		label  string
		factor int
	}{
		{"0.5x (1/4/4 KiB)", 0}, // handled specially below
		{"1x (2/8/8 KiB, Table II)", 1},
		{"2x (4/16/16 KiB)", 2},
		{"4x (8/32/32 KiB)", 4},
	}
	res := &FigResult{Name: "Extension — sensitivity to metadata cache capacity", Summary: map[string]float64{}}
	res.Table.Header = []string{"metadata caches", "geomean improvement %"}
	for _, sc := range scales {
		cfg := r.Settings.Cfg
		base := r.Settings.Cfg.Security
		switch sc.factor {
		case 0:
			cfg.Security.MACCacheKB = max(1, base.MACCacheKB/2)
			cfg.Security.CounterCacheKB = max(1, base.CounterCacheKB/2)
			cfg.Security.BMTCacheKB = max(1, base.BMTCacheKB/2)
		default:
			cfg.Security.MACCacheKB = base.MACCacheKB * sc.factor
			cfg.Security.CounterCacheKB = base.CounterCacheKB * sc.factor
			cfg.Security.BMTCacheKB = base.BMTCacheKB * sc.factor
		}
		var imps []float64
		for _, w := range r.Settings.Workloads {
			b, err := r.runWithKey(w, system.ModelBaseline, cfg, fmt.Sprintf("mcs%d", sc.factor))
			if err != nil {
				return nil, err
			}
			s, err := r.runWithKey(w, system.ModelSalus, cfg, fmt.Sprintf("mcs%d", sc.factor))
			if err != nil {
				return nil, err
			}
			imps = append(imps, float64(b.Cycles)/float64(s.Cycles))
		}
		gm, err := metrics.Geomean(imps)
		if err != nil {
			return nil, err
		}
		res.Table.AddRow(sc.label, fmt.Sprintf("%.2f", metrics.ImprovementPct(gm)))
		res.Summary[sc.label] = metrics.ImprovementPct(gm)
	}
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
