package experiments

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// sharedRunner memoises runs across tests so the quick campaign executes
// once.
var sharedRunner = NewRunner(Quick())

func TestFig3MotivationSlowdown(t *testing.T) {
	res, err := sharedRunner.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	gm := res.Summary["geomean slowdown (paper: 2.04)"]
	if gm <= 1.15 {
		t.Errorf("geomean slowdown %.3f: location-coupled security shows no migration cost", gm)
	}
	if len(res.Table.Rows) != len(sharedRunner.Settings.Workloads) {
		t.Errorf("rows = %d, want %d", len(res.Table.Rows), len(sharedRunner.Settings.Workloads))
	}
}

func TestFig10Improvement(t *testing.T) {
	res, err := sharedRunner.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	gm := res.Summary["geomean improvement %% (paper: 29.94)"]
	if gm <= 5 {
		t.Errorf("geomean improvement %.2f%%, want clearly positive", gm)
	}
	max := res.Summary["max improvement %% (paper: 190.43)"]
	if max < gm {
		t.Errorf("max %.2f%% below geomean %.2f%%", max, gm)
	}
}

func TestFig10WinnersAndLosers(t *testing.T) {
	// The paper's explanation: low page-coverage workloads (nw, btree)
	// gain more than full-coverage ones (backprop, sgemm).
	res, err := sharedRunner.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	ratio := map[string]float64{}
	for _, row := range res.Table.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		ratio[row[0]] = v
	}
	for _, winner := range []string{"nw", "btree"} {
		for _, loser := range []string{"backprop", "sgemm"} {
			if ratio[winner] <= ratio[loser] {
				t.Errorf("%s (%.3f) should gain more than %s (%.3f)",
					winner, ratio[winner], loser, ratio[loser])
			}
		}
	}
}

func TestFig11TrafficReduction(t *testing.T) {
	res, err := sharedRunner.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	mean := res.Summary["mean normalised traffic (paper: 0.4779)"]
	if mean >= 1.0 {
		t.Errorf("mean normalised traffic %.3f: no reduction", mean)
	}
	min := res.Summary["min normalised traffic (paper: 0.1771)"]
	if min > mean {
		t.Errorf("min %.3f above mean %.3f", min, mean)
	}
	if min <= 0 {
		t.Errorf("min %.3f: salus moved no security traffic at all", min)
	}
}

func TestFig12BandwidthSavings(t *testing.T) {
	res, err := sharedRunner.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary["mean CXL utilisation saved, pp (paper: 14.92)"] <= 0 {
		t.Error("no CXL bandwidth saved")
	}
	if res.Summary["mean device utilisation saved, pp (paper: 2.05)"] <= 0 {
		t.Error("no device bandwidth saved")
	}
}

func TestFig13Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	res, err := sharedRunner.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Table.Rows))
	}
	// Salus must win at every ratio.
	for ratio, imp := range res.Summary {
		if imp <= 0 {
			t.Errorf("%s: improvement %.2f%%, want positive", ratio, imp)
		}
	}
	// The win shrinks when the CXL link stops being scarce (1/4 vs 1/32).
	if res.Summary["improvement % at 1/4"] >= res.Summary["improvement % at 1/32"] {
		t.Errorf("improvement at 1/4 (%.2f) not below 1/32 (%.2f)",
			res.Summary["improvement % at 1/4"], res.Summary["improvement % at 1/32"])
	}
}

func TestFig14Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	res, err := sharedRunner.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Table.Rows))
	}
	// Less resident footprint -> more migration -> bigger Salus win.
	at20 := res.Summary["improvement % at 20%"]
	at50 := res.Summary["improvement % at 50%"]
	if at20 <= at50 {
		t.Errorf("improvement at 20%% (%.2f) not above 50%% (%.2f)", at20, at50)
	}
}

func TestAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	res, err := sharedRunner.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Table.Rows))
	}
	full := res.Summary["+ fine-grained dirty tracking (full Salus)"]
	countersOnly := res.Summary["interleaving-friendly counters"]
	if full <= countersOnly {
		t.Errorf("full Salus (%.2f%%) not above counters-only (%.2f%%)", full, countersOnly)
	}
}

func TestTables(t *testing.T) {
	t1 := Table1(Quick().Cfg)
	if !strings.Contains(t1.String(), "CXL bandwidth") {
		t.Error("Table I missing CXL bandwidth row")
	}
	t2 := Table2(Quick().Cfg)
	if !strings.Contains(t2.String(), "MAC cache") {
		t.Error("Table II missing MAC cache row")
	}
	wt := WorkloadTable(Quick())
	if len(wt.Table.Rows) != len(Quick().Workloads) {
		t.Error("workload table row count wrong")
	}
}

func TestTrafficBreakdown(t *testing.T) {
	res, err := sharedRunner.TrafficBreakdown("nw")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 6 { // 3 models x 2 tiers
		t.Errorf("rows = %d, want 6", len(res.Table.Rows))
	}
	if _, err := sharedRunner.TrafficBreakdown("nosuch"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunnerMemoisation(t *testing.T) {
	r := NewRunner(Quick())
	w := r.Settings.Workloads[0]
	a, err := r.run(w, 0, vPlain, r.Settings.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.run(w, 0, vPlain, r.Settings.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs not memoised")
	}
}

func TestProgressCallback(t *testing.T) {
	r := NewRunner(Quick())
	var lines []string
	r.Progress = func(s string) { lines = append(lines, s) }
	if _, err := r.run(r.Settings.Workloads[0], 0, vPlain, r.Settings.Cfg); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 {
		t.Errorf("progress lines = %d, want 1", len(lines))
	}
}

func TestChannelCoverage(t *testing.T) {
	res, err := ChannelCoverage(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(res.Table.Rows))
	}
	// The paper's named winners touch under half their channels per page
	// visit; the named losers touch (nearly) all of them.
	chunksPerPage := float64(Default().Cfg.Geometry.ChunksPerPage())
	for _, name := range []string{"nw", "btree", "lava"} {
		if res.Summary[name] > chunksPerPage/2 {
			t.Errorf("%s touches %.2f chunks/page, want <= %.1f", name, res.Summary[name], chunksPerPage/2)
		}
	}
	for _, name := range []string{"backprop", "sgemm"} {
		if res.Summary[name] < chunksPerPage*0.9 {
			t.Errorf("%s touches %.2f chunks/page, want ~%v", name, res.Summary[name], chunksPerPage)
		}
	}
	// Rows are sorted ascending by coverage.
	if res.Table.Rows[0][0] == "backprop" {
		t.Error("densest workload sorted first")
	}
}

func TestMetaCacheSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	res, err := sharedRunner.MetaCacheSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Table.Rows))
	}
	// Salus must keep a clear advantage even with 4x metadata caches: the
	// baseline's migration metadata traffic is compulsory.
	if res.Summary["4x (8/32/32 KiB)"] <= 0 {
		t.Errorf("improvement at 4x caches = %.2f%%, want positive", res.Summary["4x (8/32/32 KiB)"])
	}
}

func TestCounterOrganisation(t *testing.T) {
	if testing.Short() {
		t.Skip("study is slow")
	}
	res, err := sharedRunner.CounterOrganisation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Table.Rows))
	}
	mono := res.Summary["conventional, monolithic counters (SGX-style)"]
	split := res.Summary["conventional, split counters (PSSM-style)"]
	sal := res.Summary["salus (interleaving-friendly + collapsed)"]
	if !(mono < split && split < sal) {
		t.Errorf("ordering violated: mono=%.3f split=%.3f salus=%.3f", mono, split, sal)
	}
}

func TestMigrationGranularity(t *testing.T) {
	if testing.Short() {
		t.Skip("study is slow")
	}
	res, err := sharedRunner.MigrationGranularity()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Table.Rows))
	}
	// Salus must win under both movement schemes (the paper's claim that
	// its design works with either).
	if res.Summary["whole-page"] <= 0 {
		t.Errorf("whole-page improvement = %.2f%%, want positive", res.Summary["whole-page"])
	}
	if res.Summary["predicted partial"] <= 0 {
		t.Errorf("partial improvement = %.2f%%, want positive", res.Summary["predicted partial"])
	}
	// Predicted partial migration must move less data over the link.
	if res.Summary["predicted partial salus CXL data MB"] >= res.Summary["whole-page salus CXL data MB"] {
		t.Errorf("partial migration moved more data: %.2f vs %.2f MB",
			res.Summary["predicted partial salus CXL data MB"], res.Summary["whole-page salus CXL data MB"])
	}
}

func TestRenderFormats(t *testing.T) {
	res := &FigResult{Name: "demo", Summary: map[string]float64{"geomean": 1.25}}
	res.Table.Header = []string{"workload", "value, pct"}
	res.Table.AddRow("nw", `say "hi"`)

	if _, err := ParseFormat("nope"); err == nil {
		t.Error("unknown format accepted")
	}
	for _, name := range []string{"", "text", "json", "csv", "JSON"} {
		if _, err := ParseFormat(name); err != nil {
			t.Errorf("ParseFormat(%q): %v", name, err)
		}
	}

	text, err := res.Render(Text)
	if err != nil || !strings.Contains(text, "demo") {
		t.Errorf("text render: %v / %q", err, text)
	}

	js, err := res.Render(JSON)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name    string             `json:"name"`
		Columns []string           `json:"columns"`
		Rows    [][]string         `json:"rows"`
		Summary map[string]float64 `json:"summary"`
	}
	if err := json.Unmarshal([]byte(js), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Name != "demo" || len(decoded.Rows) != 1 || decoded.Summary["geomean"] != 1.25 {
		t.Errorf("decoded = %+v", decoded)
	}

	csvOut, err := res.Render(CSV)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvOut, `"value, pct"`) {
		t.Errorf("comma cell not quoted: %q", csvOut)
	}
	if !strings.Contains(csvOut, `"say ""hi"""`) {
		t.Errorf("quote cell not escaped: %q", csvOut)
	}
	if !strings.Contains(csvOut, "# geomean,1.25") {
		t.Errorf("summary row missing: %q", csvOut)
	}
}

func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("study is slow")
	}
	if _, err := sharedRunner.SeedStability(1); err == nil {
		t.Error("single seed accepted")
	}
	res, err := sharedRunner.SeedStability(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Table.Rows))
	}
	// The mechanism must win under every randomisation, and the spread
	// must be small relative to the mean (mechanism, not noise).
	if res.Summary["min improvement %"] <= 0 {
		t.Errorf("min improvement = %.2f%%, want positive under every seed", res.Summary["min improvement %"])
	}
	if res.Summary["spread (max-min) pp"] > res.Summary["mean improvement %"] {
		t.Errorf("spread %.2f pp exceeds mean %.2f%% — improvement is noise-dominated",
			res.Summary["spread (max-min) pp"], res.Summary["mean improvement %"])
	}
}
