package experiments

import (
	"fmt"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/metrics"
	"github.com/salus-sim/salus/internal/stats"
	"github.com/salus-sim/salus/internal/system"
	"github.com/salus-sim/salus/internal/trace"
)

// MigrationGranularity is an extension study validating the paper's claim
// that its security design "works with any of these" page-movement schemes
// (§IV-A3): it runs whole-page migration and footprint-predicted partial
// migration under every security model and reports the geomean IPC
// improvement of Salus over conventional plus the CXL data traffic. Under
// partial migration the conventional model must still perform
// chunk-proportional metadata transfers and re-encryptions per fill, while
// Salus remains relocation-free either way.
func (r *Runner) MigrationGranularity() (*FigResult, error) {
	cfg := r.Settings.Cfg
	res := &FigResult{Name: "Extension — migration granularity study", Summary: map[string]float64{}}
	res.Table.Header = []string{"migration", "geomean improvement %", "salus CXL data MB", "conv CXL data MB"}

	for _, mode := range []struct {
		label      string
		predictive bool
	}{
		{"whole-page", false},
		{"predicted partial", true},
	} {
		var imps []float64
		var salData, convData float64
		for _, w := range r.Settings.Workloads {
			base, err := r.runMode(w, system.ModelBaseline, cfg, mode.predictive)
			if err != nil {
				return nil, err
			}
			sal, err := r.runMode(w, system.ModelSalus, cfg, mode.predictive)
			if err != nil {
				return nil, err
			}
			imps = append(imps, float64(base.Cycles)/float64(sal.Cycles))
			salData += float64(sal.Traffic.Bytes(stats.CXL, stats.Data))
			convData += float64(base.Traffic.Bytes(stats.CXL, stats.Data))
		}
		gm, err := metrics.Geomean(imps)
		if err != nil {
			return nil, err
		}
		res.Table.AddRow(mode.label,
			fmt.Sprintf("%.2f", metrics.ImprovementPct(gm)),
			fmt.Sprintf("%.2f", salData/(1<<20)),
			fmt.Sprintf("%.2f", convData/(1<<20)))
		res.Summary[mode.label] = metrics.ImprovementPct(gm)
		res.Summary[mode.label+" salus CXL data MB"] = salData / (1 << 20)
	}
	return res, nil
}

func (r *Runner) runMode(w trace.Params, model system.Model, cfg config.Config, predictive bool) (*stats.Run, error) {
	tag := ""
	if predictive {
		tag = "predictive"
	}
	key := runKey{workload: w.Name, model: model, variant: vPlain,
		cxlNum: cfg.Memory.CXLRatioNum, cxlDen: cfg.Memory.CXLRatioDen,
		ratio: cfg.Memory.DeviceFootprintRatio, tag: tag}
	if got, ok := r.cache[key]; ok {
		return got, nil
	}
	out, err := system.Run(system.Options{
		Cfg:                 cfg,
		Workload:            w,
		Model:               model,
		MaxAccesses:         r.Settings.MaxAccesses,
		CycleLimit:          r.Settings.CycleLimit,
		PredictiveMigration: predictive,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s/%s: %w", w.Name, model, tag, err)
	}
	r.cache[key] = out
	return out, nil
}
