package fault

import "testing"

// drive runs n first-attempt accesses through an injector, retrying each
// transient fault until it clears, and returns the fault kinds observed
// per access slot plus the total retry count.
func drive(t *testing.T, inj Injector, tier Tier, n int) (kinds []Kind, retries int) {
	t.Helper()
	for i := 0; i < n; i++ {
		a := Access{Tier: tier, Addr: uint64(i) * 32}
		f := inj.Inject(a)
		if f == nil {
			kinds = append(kinds, Kind(0xff))
			continue
		}
		kinds = append(kinds, f.Kind)
		if f.Kind != Transient {
			continue
		}
		for attempt := 1; ; attempt++ {
			if attempt > 64 {
				t.Fatalf("access %d: transient fault never cleared", i)
			}
			a.Attempt = attempt
			retries++
			if inj.Inject(a) == nil {
				break
			}
		}
	}
	return kinds, retries
}

func TestRatePlanDeterministic(t *testing.T) {
	mk := func() Injector {
		return NewRatePlan(7, Rates{Transient: 0.2, Poison: 0.01, StuckBit: 0.01}, 3)
	}
	k1, r1 := drive(t, mk(), TierDevice, 2000)
	k2, r2 := drive(t, mk(), TierDevice, 2000)
	if r1 != r2 {
		t.Fatalf("retry counts diverged: %d vs %d", r1, r2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("access %d: kind %v vs %v under the same seed", i, k1[i], k2[i])
		}
	}
}

func TestRatePlanRatesRoughlyHold(t *testing.T) {
	p := NewRatePlan(1, Rates{Transient: 0.25}, 1)
	kinds, retries := drive(t, p, TierHome, 8000)
	faults := 0
	for _, k := range kinds {
		if k == Transient {
			faults++
		}
	}
	if faults < 1500 || faults > 2500 {
		t.Errorf("transient faults = %d over 8000 accesses at rate 0.25", faults)
	}
	// MaxBurst 1: every fault clears on its first retry.
	if retries != faults {
		t.Errorf("retries = %d, want one per fault (%d)", retries, faults)
	}
}

func TestRatePlanBurstBounded(t *testing.T) {
	p := NewRatePlan(3, Rates{Transient: 0.5}, 4)
	for i := 0; i < 4000; i++ {
		a := Access{Tier: TierDevice, Addr: uint64(i)}
		if p.Inject(a) == nil {
			continue
		}
		cleared := false
		for attempt := 1; attempt <= 4; attempt++ {
			a.Attempt = attempt
			if p.Inject(a) == nil {
				cleared = true
				break
			}
		}
		if !cleared {
			t.Fatalf("access %d: burst exceeded maxBurst=4", i)
		}
	}
}

func TestRatePlanRecoverable(t *testing.T) {
	if !NewRatePlan(1, Rates{Transient: 0.1}, 2).Recoverable() {
		t.Error("transient-only rate plan should be recoverable")
	}
	if NewRatePlan(1, Rates{Transient: 0.1, Poison: 0.001}, 2).Recoverable() {
		t.Error("poisoning rate plan should not be recoverable")
	}
}

func TestScriptPlanFiresAtOrdinals(t *testing.T) {
	p := NewScriptPlan([]Event{
		{Tier: TierDevice, N: 2, Kind: Transient, Burst: 2},
		{Tier: TierDevice, N: 4, Kind: Poison},
		{Tier: TierHome, N: 1, Kind: StuckBit, Bit: 5},
	})
	if !p.Recoverable() {
		// Poison and StuckBit events are present.
	} else {
		t.Error("script with poison events reported recoverable")
	}

	// Device access 1: clean.
	if f := p.Inject(Access{Tier: TierDevice}); f != nil {
		t.Fatalf("device access 1 faulted: %+v", f)
	}
	// Device access 2: transient with burst 2 (fails attempt 0 and 1).
	if f := p.Inject(Access{Tier: TierDevice}); f == nil || f.Kind != Transient {
		t.Fatalf("device access 2: got %+v, want transient", f)
	}
	if f := p.Inject(Access{Tier: TierDevice, Attempt: 1}); f == nil || f.Kind != Transient {
		t.Fatalf("device access 2 retry 1: got %+v, want transient", f)
	}
	if f := p.Inject(Access{Tier: TierDevice, Attempt: 2}); f != nil {
		t.Fatalf("device access 2 retry 2: got %+v, want clean", f)
	}
	// Home access 1 (independent ordinal space): stuck bit.
	if f := p.Inject(Access{Tier: TierHome}); f == nil || f.Kind != StuckBit || f.Bit != 5 {
		t.Fatalf("home access 1: got %+v, want stuck bit 5", f)
	}
	// Device access 3: clean; access 4: poison.
	if f := p.Inject(Access{Tier: TierDevice}); f != nil {
		t.Fatalf("device access 3 faulted: %+v", f)
	}
	if f := p.Inject(Access{Tier: TierDevice}); f == nil || f.Kind != Poison {
		t.Fatalf("device access 4: got %+v, want poison", f)
	}
	// Events fire once.
	if f := p.Inject(Access{Tier: TierHome}); f != nil {
		t.Fatalf("home access 2 faulted: %+v", f)
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[string]string{
		Transient.String(): "transient",
		Poison.String():    "poison",
		StuckBit.String():  "stuck-bit",
		TierHome.String():  "home",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if Transient.Recoverable() != true || Poison.Recoverable() || StuckBit.Recoverable() {
		t.Error("Recoverable flags wrong")
	}
}
