// Package fault models the hardware failure modes of a two-tier
// GPU + CXL memory system: transient link errors (a CXL flit fails CRC
// and is retried), uncorrectable media errors (the device reports poison
// for a region whose data is lost), and stuck-at media bits (a cell that
// no longer stores what is written, detected by ECC as uncorrectable).
//
// The package is purely descriptive: injectors decide *when* a physical
// access faults and *how*; the recovery machinery (retry with backoff,
// frame quarantine, page pinning) lives in internal/securemem, which
// consults an Injector at every raw access to either tier's media.
//
// Injectors are deterministic. A RatePlan is driven by a seeded PRNG, so
// the same seed replays the same fault schedule — the property the chaos
// mode of internal/check relies on to shrink failing sequences. A
// ScriptPlan fires at exact access ordinals, which is what precise
// accounting tests want.
package fault

import (
	"fmt"
	"math/rand"
)

// Tier identifies which physical memory an access touches.
type Tier uint8

const (
	// TierHome is the CXL expansion memory (the home tier).
	TierHome Tier = iota
	// TierDevice is the GPU-local device memory.
	TierDevice
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierHome:
		return "home"
	case TierDevice:
		return "device"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// Kind classifies a fault.
type Kind uint8

const (
	// Transient is a link-level error (CRC failure, dropped flit). The
	// data in the media is intact; re-issuing the access can succeed.
	Transient Kind = iota
	// Poison is an uncorrectable media error: the stored data is lost and
	// the device reports poison on access. Not retryable.
	Poison
	// StuckBit is a stuck-at media cell detected by ECC as uncorrectable.
	// Like Poison the data is lost; unlike Poison the failure is bound to
	// a physical location, so the containing frame must be retired.
	StuckBit
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Poison:
		return "poison"
	case StuckBit:
		return "stuck-bit"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Recoverable reports whether a fault of this kind can be survived
// without data loss by retrying the access.
func (k Kind) Recoverable() bool { return k == Transient }

// Fault is one injected failure.
type Fault struct {
	Kind Kind
	// Bit is the stuck bit position (0..7) for StuckBit faults; it is
	// diagnostic only.
	Bit uint8
}

// Access describes one raw access to tier media, as presented to an
// injector. Addr is a byte address within the tier's own address space
// (home address for TierHome, device address for TierDevice).
type Access struct {
	Tier  Tier
	Addr  uint64
	Write bool
	// Attempt is 0 for the first issue of an access and n for its nth
	// retry. Retries of one access share the Tier/Addr/Write of the
	// original, so injectors can model fault persistence across retries.
	Attempt int
}

// Injector decides whether a raw media access faults. Implementations
// must be deterministic functions of their construction parameters and
// the access stream; Inject returns nil for a clean access.
type Injector interface {
	Inject(a Access) *Fault
}

// Rates configures a RatePlan: independent per-access fault
// probabilities, each in [0, 1].
type Rates struct {
	Transient float64
	Poison    float64
	StuckBit  float64
}

// RatePlan injects faults at seeded pseudo-random rates. Transient
// faults persist for a bounded burst of consecutive attempts (1 up to
// MaxBurst), modelling a link glitch that outlives a single retry; keep
// MaxBurst at or below the retry budget of the consuming RetryPolicy or
// a "recoverable" plan can still exhaust retries.
type RatePlan struct {
	rng       *rand.Rand
	rates     Rates
	maxBurst  int
	burstLeft int // further attempts of the current access that still fail
}

// NewRatePlan builds a seeded rate-based injector. maxBurst < 1 is
// treated as 1 (every transient fault clears on the first retry).
func NewRatePlan(seed int64, rates Rates, maxBurst int) *RatePlan {
	if maxBurst < 1 {
		maxBurst = 1
	}
	return &RatePlan{rng: rand.New(rand.NewSource(seed)), rates: rates, maxBurst: maxBurst}
}

// Recoverable reports whether the plan can only emit retryable faults.
func (p *RatePlan) Recoverable() bool { return p.rates.Poison == 0 && p.rates.StuckBit == 0 }

// Inject implements Injector.
func (p *RatePlan) Inject(a Access) *Fault {
	if a.Attempt > 0 {
		// Retry of an access this plan transiently faulted: fail it while
		// the burst lasts, succeed after.
		if p.burstLeft > 0 {
			p.burstLeft--
			return &Fault{Kind: Transient}
		}
		return nil
	}
	p.burstLeft = 0
	x := p.rng.Float64()
	switch {
	case x < p.rates.Poison:
		return &Fault{Kind: Poison}
	case x < p.rates.Poison+p.rates.StuckBit:
		return &Fault{Kind: StuckBit, Bit: uint8(p.rng.Intn(8))}
	case x < p.rates.Poison+p.rates.StuckBit+p.rates.Transient:
		p.burstLeft = p.rng.Intn(p.maxBurst)
		return &Fault{Kind: Transient}
	}
	return nil
}

// Event is one scripted fault: it fires on the Nth first-attempt access
// to its tier (1-based), as counted by the plan.
type Event struct {
	Tier Tier
	N    uint64 // access ordinal within the tier, 1-based
	Kind Kind
	// Burst is the number of consecutive attempts that fail for Transient
	// events (a value < 1 means exactly one). Ignored for other kinds.
	Burst int
	// Bit is the stuck bit position for StuckBit events.
	Bit uint8
}

// ScriptPlan fires an explicit list of fault events at exact access
// ordinals, for tests that assert precise retry and recovery accounting.
type ScriptPlan struct {
	events    []Event
	fired     []bool
	count     map[Tier]uint64
	burstLeft int
}

// NewScriptPlan builds a scripted injector over events (order is
// irrelevant; each event fires at most once).
func NewScriptPlan(events []Event) *ScriptPlan {
	return &ScriptPlan{
		events: append([]Event(nil), events...),
		fired:  make([]bool, len(events)),
		count:  map[Tier]uint64{},
	}
}

// Recoverable reports whether every scripted event is retryable.
func (p *ScriptPlan) Recoverable() bool {
	for _, e := range p.events {
		if !e.Kind.Recoverable() {
			return false
		}
	}
	return true
}

// Inject implements Injector.
func (p *ScriptPlan) Inject(a Access) *Fault {
	if a.Attempt > 0 {
		if p.burstLeft > 0 {
			p.burstLeft--
			return &Fault{Kind: Transient}
		}
		return nil
	}
	p.burstLeft = 0
	p.count[a.Tier]++
	n := p.count[a.Tier]
	for i, e := range p.events {
		if p.fired[i] || e.Tier != a.Tier || e.N != n {
			continue
		}
		p.fired[i] = true
		if e.Kind == Transient && e.Burst > 1 {
			p.burstLeft = e.Burst - 1
		}
		return &Fault{Kind: e.Kind, Bit: e.Bit}
	}
	return nil
}
