package crash

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record framing on the medium:
//
//	[0:2]   magic "SJ"
//	[2]     record type (TypeCommit for commits, caller-defined below it)
//	[3:11]  epoch, little-endian uint64
//	[11:15] payload length, little-endian uint32
//	[15:..] payload
//	[..+4]  CRC32 (IEEE) over bytes [2:15+plen] — type, epoch, length, payload
//
// Each record is exactly one StableStore write, so every record edge is a
// crash point.
const (
	recHeaderLen  = 2 + 1 + 8 + 4
	recTrailerLen = 4

	// TypeCommit marks an epoch's commit record; its payload is the
	// little-endian uint32 count of the epoch's data records. All data
	// record types must be below it.
	TypeCommit byte = 0xC0

	// maxPayload bounds a record payload; longer declared lengths are
	// treated as corruption rather than honoured.
	maxPayload = 1 << 28
)

var recMagic = [2]byte{'S', 'J'}

// Record is one journal entry as seen by Replay.
type Record struct {
	Type    byte
	Epoch   uint64
	Payload []byte
}

// Journal appends framed records to a StableStore with two-phase epoch
// commit: data records are written (one store write each), then synced,
// then a commit record carrying the epoch's record count is written and
// synced. An epoch whose commit record is not durable never happened.
//
// Journal is an append-only writer; reading a journal back is Replay's
// job and operates on raw medium bytes.
type Journal struct {
	store    StableStore
	written  uint64
	curEpoch uint64
	pending  uint32 // data records appended in curEpoch since its last commit
}

// NewJournal returns a journal writing through store.
func NewJournal(store StableStore) *Journal {
	return &Journal{store: store}
}

// Append writes one data record of the given epoch. typ must be below
// TypeCommit. Epochs must not interleave: appending a record of a new
// epoch abandons any uncommitted records of the previous one (Replay will
// discard them).
func (j *Journal) Append(typ byte, epoch uint64, payload []byte) error {
	if typ >= TypeCommit {
		return fmt.Errorf("crash: record type %#x reserved for commit records", typ)
	}
	if epoch != j.curEpoch {
		j.curEpoch = epoch
		j.pending = 0
	}
	if err := j.store.Write(encodeRecord(typ, epoch, payload)); err != nil {
		return err
	}
	j.written += uint64(recHeaderLen + len(payload) + recTrailerLen)
	j.pending++
	return nil
}

// Commit makes the epoch durable: it syncs the epoch's data records,
// writes the commit record carrying their count, and syncs again. Only
// after Commit returns nil is the epoch recoverable.
func (j *Journal) Commit(epoch uint64) error {
	var count uint32
	if epoch == j.curEpoch {
		count = j.pending
	}
	if err := j.store.Sync(); err != nil {
		return err
	}
	payload := make([]byte, 4)
	binary.LittleEndian.PutUint32(payload, count)
	if err := j.store.Write(encodeRecord(TypeCommit, epoch, payload)); err != nil {
		return err
	}
	j.written += uint64(recHeaderLen + len(payload) + recTrailerLen)
	if err := j.store.Sync(); err != nil {
		return err
	}
	j.curEpoch = epoch
	j.pending = 0
	return nil
}

// BytesWritten returns the total framed bytes handed to the store.
func (j *Journal) BytesWritten() uint64 { return j.written }

func encodeRecord(typ byte, epoch uint64, payload []byte) []byte {
	rec := make([]byte, recHeaderLen+len(payload)+recTrailerLen)
	copy(rec, recMagic[:])
	rec[2] = typ
	binary.LittleEndian.PutUint64(rec[3:], epoch)
	binary.LittleEndian.PutUint32(rec[11:], uint32(len(payload)))
	copy(rec[recHeaderLen:], payload)
	sum := crc32.ChecksumIEEE(rec[2 : recHeaderLen+len(payload)])
	binary.LittleEndian.PutUint32(rec[recHeaderLen+len(payload):], sum)
	return rec
}

// Replay scans raw journal bytes and returns, in order, the data records
// of every committed epoch up to and including target — the incremental
// history that reconstructs the target epoch's state. It stops at
// target's commit record; damage beyond it (the normal debris of a crash
// mid-checkpoint) is never examined.
//
// Outcomes:
//   - target reached: ([]Record, nil). target 0 means "never
//     checkpointed" and returns (nil, nil) without reading the journal.
//   - damage before target's commit — bad magic, bad CRC, truncated
//     record, epoch ordering violation, or a commit count that does not
//     match the records present: (nil, ErrTornCheckpoint).
//   - the journal ends cleanly at a record edge with fewer commits than
//     target: (nil, ErrRollback) — an internally valid but stale journal
//     is a rollback of the trusted epoch, never silently accepted.
func Replay(data []byte, target uint64) ([]Record, error) {
	if target == 0 {
		return nil, nil
	}
	var (
		out          []Record
		committed    uint64   // last committed epoch seen
		pendingEpoch uint64   // epoch of the uncommitted records below
		pendingRecs  []Record // records of pendingEpoch since its last record run began
	)
	off := 0
	for off < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			return nil, fmt.Errorf("%w: offset %d: %v", ErrTornCheckpoint, off, err)
		}
		off += n
		if rec.Type == TypeCommit {
			if len(rec.Payload) != 4 {
				return nil, fmt.Errorf("%w: offset %d: commit payload length %d", ErrTornCheckpoint, off-n, len(rec.Payload))
			}
			if rec.Epoch <= committed {
				return nil, fmt.Errorf("%w: offset %d: commit epoch %d not above %d", ErrTornCheckpoint, off-n, rec.Epoch, committed)
			}
			want := binary.LittleEndian.Uint32(rec.Payload)
			var have uint32
			if pendingEpoch == rec.Epoch {
				have = uint32(len(pendingRecs))
			}
			if want != have {
				return nil, fmt.Errorf("%w: offset %d: epoch %d committed %d records, found %d", ErrTornCheckpoint, off-n, rec.Epoch, want, have)
			}
			out = append(out, pendingRecs...)
			pendingRecs = nil
			committed = rec.Epoch
			if committed >= target {
				if committed > target {
					// The first commit past an honest journal's trusted
					// epoch means the root predates the journal — it is
					// the journal that is ahead, not behind; treat the
					// root as stale TCB state and refuse.
					return nil, fmt.Errorf("%w: journal committed epoch %d beyond trusted epoch %d", ErrTornCheckpoint, committed, target)
				}
				return out, nil
			}
			continue
		}
		if rec.Epoch <= committed {
			return nil, fmt.Errorf("%w: offset %d: record epoch %d not above committed %d", ErrTornCheckpoint, off-n, rec.Epoch, committed)
		}
		if rec.Epoch != pendingEpoch {
			// A new epoch abandons the previous uncommitted one.
			pendingEpoch = rec.Epoch
			pendingRecs = pendingRecs[:0]
		}
		pendingRecs = append(pendingRecs, rec)
	}
	return nil, fmt.Errorf("%w: journal ends at committed epoch %d, trusted epoch is %d", ErrRollback, committed, target)
}

// decodeRecord parses one record at the head of data, returning it and
// the bytes consumed.
func decodeRecord(data []byte) (Record, int, error) {
	if len(data) < recHeaderLen+recTrailerLen {
		return Record{}, 0, fmt.Errorf("truncated record header (%d bytes)", len(data))
	}
	if data[0] != recMagic[0] || data[1] != recMagic[1] {
		return Record{}, 0, fmt.Errorf("bad record magic %#x%x", data[0], data[1])
	}
	plen := binary.LittleEndian.Uint32(data[11:])
	if plen > maxPayload {
		return Record{}, 0, fmt.Errorf("implausible payload length %d", plen)
	}
	total := recHeaderLen + int(plen) + recTrailerLen
	if len(data) < total {
		return Record{}, 0, fmt.Errorf("truncated record body (%d of %d bytes)", len(data), total)
	}
	sum := crc32.ChecksumIEEE(data[2 : recHeaderLen+int(plen)])
	if sum != binary.LittleEndian.Uint32(data[recHeaderLen+int(plen):]) {
		return Record{}, 0, fmt.Errorf("record checksum mismatch")
	}
	return Record{
		Type:    data[2],
		Epoch:   binary.LittleEndian.Uint64(data[3:]),
		Payload: append([]byte(nil), data[recHeaderLen:recHeaderLen+int(plen)]...),
	}, total, nil
}

// CommittedEpoch scans the journal and returns the highest cleanly
// committed epoch, ignoring any trailing damage. It is a diagnostic aid
// (and the crash harness's ground truth for pairing cuts with roots);
// recovery itself must use Replay with the trusted epoch, never trust the
// journal's own word.
func CommittedEpoch(data []byte) uint64 {
	var (
		committed    uint64
		pendingEpoch uint64
		pendingN     uint32
	)
	off := 0
	for off < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			break
		}
		off += n
		if rec.Type == TypeCommit {
			if len(rec.Payload) != 4 || rec.Epoch <= committed {
				break
			}
			var have uint32
			if pendingEpoch == rec.Epoch {
				have = pendingN
			}
			if binary.LittleEndian.Uint32(rec.Payload) != have {
				break
			}
			committed = rec.Epoch
			pendingN = 0
			continue
		}
		if rec.Epoch <= committed {
			break
		}
		if rec.Epoch != pendingEpoch {
			pendingEpoch = rec.Epoch
			pendingN = 0
		}
		pendingN++
	}
	return committed
}
