package crash

import "math/rand"

// MemStore is a trivial in-memory StableStore with no failure model: every
// write is immediately durable. It backs normal (non-injected) checkpoint
// runs and tests.
type MemStore struct {
	buf []byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Write appends p.
func (m *MemStore) Write(p []byte) error {
	m.buf = append(m.buf, p...)
	return nil
}

// Sync is a no-op: MemStore writes are always durable.
func (m *MemStore) Sync() error { return nil }

// Bytes returns a copy of everything written.
func (m *MemStore) Bytes() []byte { return append([]byte(nil), m.buf...) }

// DamageMode selects how the writes issued after the last successful Sync
// — the contents of the device's volatile write cache at the instant of
// power loss — appear on the medium afterwards.
type DamageMode int

const (
	// CutClean drops every unsynced write: the cache was lost whole.
	CutClean DamageMode = iota
	// CutTorn applies a prefix of the unsynced writes in order, tearing
	// the last applied write at an arbitrary byte: the cache drained
	// front-to-back and died mid-sector.
	CutTorn
	// CutReorder applies an arbitrary subset of the unsynced writes at
	// their natural offsets, filling the gaps with garbage: the cache
	// drained out of order.
	CutReorder
	// CutCorrupt drops the unsynced writes and additionally flips one bit
	// somewhere in the synced region: media corruption on top of the
	// power loss. Unlike the other modes this damages data a Sync had
	// promised durable, so recovery is expected to detect it rather than
	// reconstruct through it.
	CutCorrupt
	// NumDamageModes counts the modes; crash enumeration loops over
	// DamageMode(0..NumDamageModes-1).
	NumDamageModes
)

// String names the mode.
func (m DamageMode) String() string {
	switch m {
	case CutClean:
		return "clean"
	case CutTorn:
		return "torn"
	case CutReorder:
		return "reorder"
	case CutCorrupt:
		return "corrupt"
	}
	return "damage(?)"
}

// Honest reports whether the mode damages only unsynced writes. At an
// honest cut, recovery must reconstruct the trusted epoch exactly; a
// dishonest mode (CutCorrupt) violates the Sync contract, so recovery may
// instead fail with a typed error.
func (m DamageMode) Honest() bool { return m != CutCorrupt }

type tapeEvent struct {
	data []byte // nil for a sync event
	sync bool
}

// Tape records the full write/sync history of a journal so that a single
// run can afterwards be cut at every boundary. Both writes and syncs are
// events: a crash point between a write and the Sync that would cover it
// is exactly the "commit record written but not yet durable" race, so
// syncs must be enumerable boundaries too. Tape is itself a StableStore:
// use it as the journal's store during the recorded run, then call Cut to
// materialise the medium contents for any crash point.
type Tape struct {
	events []tapeEvent
	writes int
}

// Write records one write event.
func (t *Tape) Write(p []byte) error {
	t.events = append(t.events, tapeEvent{data: append([]byte(nil), p...)})
	t.writes++
	return nil
}

// Sync records one durability barrier.
func (t *Tape) Sync() error {
	t.events = append(t.events, tapeEvent{sync: true})
	return nil
}

// Points returns the number of events recorded. Valid crash points for
// Cut are 0..Points() inclusive: cut e means power was lost after event e
// and before event e+1.
func (t *Tape) Points() int { return len(t.events) }

// Writes returns the number of write events recorded.
func (t *Tape) Writes() int { return t.writes }

// Bytes returns the clean (undamaged, fully synced) medium contents.
func (t *Tape) Bytes() []byte {
	var out []byte
	for _, ev := range t.events {
		out = append(out, ev.data...)
	}
	return out
}

// Cut returns the medium contents after power is lost at crash point e
// (the first e events happened; later ones never did), with the writes
// not yet covered by a Sync damaged per mode. The result is deterministic
// in (e, mode, seed).
func (t *Tape) Cut(e int, mode DamageMode, seed int64) []byte {
	if e < 0 {
		e = 0
	}
	if e > len(t.events) {
		e = len(t.events)
	}
	var durable [][]byte // writes covered by a sync at or before e
	var pending [][]byte // writes still in the volatile cache at e
	for _, ev := range t.events[:e] {
		if ev.sync {
			durable = append(durable, pending...)
			pending = pending[:0]
			continue
		}
		pending = append(pending, ev.data)
	}
	var out []byte
	for _, p := range durable {
		out = append(out, p...)
	}
	rng := rand.New(rand.NewSource(seed<<20 ^ int64(e)<<4 ^ int64(mode)))
	switch mode {
	case CutClean:
		// Volatile cache lost whole.
	case CutTorn:
		if len(pending) > 0 {
			k := rng.Intn(len(pending) + 1)
			for _, p := range pending[:k] {
				out = append(out, p...)
			}
			if k < len(pending) {
				torn := pending[k]
				out = append(out, torn[:rng.Intn(len(torn)+1)]...)
			}
		}
	case CutReorder:
		if len(pending) > 0 {
			applied := make([]bool, len(pending))
			offsets := make([]int, len(pending))
			off, last := 0, -1
			for i, p := range pending {
				offsets[i] = off
				off += len(p)
				if rng.Intn(2) == 0 {
					applied[i] = true
					last = i
				}
			}
			if last >= 0 {
				region := make([]byte, offsets[last]+len(pending[last]))
				rng.Read(region) // garbage where nothing landed
				for i, p := range pending {
					if applied[i] {
						copy(region[offsets[i]:], p)
					}
				}
				out = append(out, region...)
			}
		}
	case CutCorrupt:
		if len(out) > 0 {
			pos := rng.Intn(len(out))
			out[pos] ^= 1 << uint(rng.Intn(8))
		}
	}
	return out
}

// CrashStore is a StableStore that simulates losing power at a chosen
// event boundary: the first cutAfter events (writes and syncs both count)
// succeed, recorded on an internal Tape, and every later Write or Sync
// returns ErrPowerLost. After the run, Durable returns the medium
// contents with the unsynced tail damaged per the configured mode.
type CrashStore struct {
	tape Tape
	cut  int
	mode DamageMode
	seed int64
	dead bool
}

// NewCrashStore returns a store that dies at event boundary cutAfter.
func NewCrashStore(cutAfter int, mode DamageMode, seed int64) *CrashStore {
	return &CrashStore{cut: cutAfter, mode: mode, seed: seed}
}

// Write records p, or reports the power cut.
func (c *CrashStore) Write(p []byte) error {
	if c.dead || len(c.tape.events) >= c.cut {
		c.dead = true
		return ErrPowerLost
	}
	return c.tape.Write(p)
}

// Sync marks recorded writes durable, or reports the power cut.
func (c *CrashStore) Sync() error {
	if c.dead || len(c.tape.events) >= c.cut {
		c.dead = true
		return ErrPowerLost
	}
	return c.tape.Sync()
}

// Dead reports whether the power cut has fired.
func (c *CrashStore) Dead() bool { return c.dead }

// Durable returns the post-crash medium contents.
func (c *CrashStore) Durable() []byte {
	return c.tape.Cut(len(c.tape.events), c.mode, c.seed)
}
