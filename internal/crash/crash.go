// Package crash provides the durable-state counterpart of the runtime
// fault ladder: a write-ahead checkpoint journal over a pluggable stable
// store, plus a power-loss injection harness that can cut power at every
// write boundary and produce torn, partial, and reordered writes.
//
// The journal is an append-only sequence of framed, checksummed records
// grouped into epochs and committed with a two-phase protocol:
//
//	append data records of epoch E      (one store write each)
//	Sync                                (data durable)
//	append commit record of epoch E     (carries the record count)
//	Sync                                (epoch E committed)
//
// Recovery (Replay) scans the journal against the epoch recorded in the
// caller's trusted root and enforces two properties:
//
//   - Crash consistency: damage confined to epochs after the trusted
//     epoch — the normal result of losing power mid-checkpoint — is
//     ignored; the trusted epoch is reconstructed exactly. Damage inside
//     a committed epoch at or before the trusted epoch (a torn or missing
//     record, a checksum mismatch, an epoch ordering violation) is
//     reported as ErrTornCheckpoint, never silently absorbed.
//   - Rollback protection: a journal whose commits stop short of the
//     trusted epoch is a replayed stale image (or a truncation attack)
//     and is rejected with ErrRollback. The trusted epoch is monotonic
//     TCB state; old-but-internally-valid journals never resurrect old
//     counters.
//
// Record checksums are CRC32 — corruption detection, not authentication.
// Cryptographic authentication of the recovered state is the caller's
// job: securemem verifies the rebuilt integrity-tree roots against the
// trusted root after replay.
package crash

import "errors"

// Typed recovery errors. Callers match them with errors.Is.
var (
	// ErrTornCheckpoint reports journal damage inside a committed epoch:
	// a torn, missing, reordered, or corrupted record at or before the
	// trusted epoch. The journal cannot reconstruct the trusted state.
	ErrTornCheckpoint = errors.New("crash: torn checkpoint (journal damaged within a committed epoch)")
	// ErrRollback reports a journal whose commits stop before the trusted
	// epoch: a replayed stale image or a truncated journal. Accepting it
	// would roll security counters back, so it is always rejected.
	ErrRollback = errors.New("crash: stale journal rejected (rollback of the trusted epoch)")
	// ErrPowerLost reports a store operation attempted after the
	// injected power cut.
	ErrPowerLost = errors.New("crash: simulated power loss")
)

// StableStore is the durable medium a Journal writes through. Each Write
// is one write boundary — the unit at which the power-loss harness can
// cut — and Sync is the durability barrier: data from writes issued
// before a successful Sync survives any later power loss intact.
type StableStore interface {
	Write(p []byte) error
	Sync() error
}
