package crash

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// journalEpochs writes n epochs to store, each with a few data records,
// and returns the expected cumulative replay result per epoch.
func journalEpochs(t *testing.T, store StableStore, n int) [][]Record {
	t.Helper()
	j := NewJournal(store)
	var cumulative []Record
	var perEpoch [][]Record
	for e := uint64(1); e <= uint64(n); e++ {
		for r := 0; r < int(e); r++ { // epoch e carries e records
			payload := []byte(fmt.Sprintf("epoch %d record %d", e, r))
			if err := j.Append(byte(r%3), e, payload); err != nil {
				t.Fatalf("Append(e=%d r=%d): %v", e, r, err)
			}
			cumulative = append(cumulative, Record{Type: byte(r % 3), Epoch: e, Payload: payload})
		}
		if err := j.Commit(e); err != nil {
			t.Fatalf("Commit(%d): %v", e, err)
		}
		perEpoch = append(perEpoch, append([]Record(nil), cumulative...))
	}
	return perEpoch
}

func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Epoch != b[i].Epoch || !bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}

func TestReplayRoundTrip(t *testing.T) {
	store := NewMemStore()
	perEpoch := journalEpochs(t, store, 4)
	data := store.Bytes()

	if recs, err := Replay(data, 0); err != nil || recs != nil {
		t.Fatalf("Replay(target=0) = %v, %v; want nil, nil", recs, err)
	}
	for e := 1; e <= 4; e++ {
		recs, err := Replay(data, uint64(e))
		if err != nil {
			t.Fatalf("Replay(target=%d): %v", e, err)
		}
		if !recordsEqual(recs, perEpoch[e-1]) {
			t.Fatalf("Replay(target=%d): got %d records, want %d", e, len(recs), len(perEpoch[e-1]))
		}
	}
}

func TestReplayRejectsStaleJournal(t *testing.T) {
	store := NewMemStore()
	journalEpochs(t, store, 2)
	// The trusted epoch says 5: this journal is a replayed old image.
	if _, err := Replay(store.Bytes(), 5); !errors.Is(err, ErrRollback) {
		t.Fatalf("Replay of stale journal: %v; want ErrRollback", err)
	}
	// An empty journal against a nonzero trusted epoch is the limiting case.
	if _, err := Replay(nil, 1); !errors.Is(err, ErrRollback) {
		t.Fatalf("Replay of empty journal: %v; want ErrRollback", err)
	}
}

func TestReplayDetectsCorruption(t *testing.T) {
	store := NewMemStore()
	journalEpochs(t, store, 3)
	clean := store.Bytes()

	// Every single-byte corruption before the target's commit must be
	// detected (CRC framing), never silently absorbed.
	for off := 0; off < len(clean); off += 7 {
		data := append([]byte(nil), clean...)
		data[off] ^= 0x41
		recs, err := Replay(data, 3)
		if err == nil {
			// A flip after epoch 3's commit record is never examined.
			if !recordsEqual(recs, mustReplay(t, clean, 3)) {
				t.Fatalf("flip at %d: records differ from clean replay", off)
			}
			continue
		}
		if !errors.Is(err, ErrTornCheckpoint) && !errors.Is(err, ErrRollback) {
			t.Fatalf("flip at %d: untyped error %v", off, err)
		}
	}

	// Truncation mid-record is torn.
	if _, err := Replay(clean[:len(clean)-3], 3); !errors.Is(err, ErrTornCheckpoint) {
		t.Fatalf("truncated journal: %v; want ErrTornCheckpoint", err)
	}
}

func mustReplay(t *testing.T, data []byte, target uint64) []Record {
	t.Helper()
	recs, err := Replay(data, target)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestReplayDiscardsAbandonedEpoch(t *testing.T) {
	store := NewMemStore()
	j := NewJournal(store)
	if err := j.Append(1, 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(1); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 is abandoned mid-write (no commit); epoch 3 retries.
	if err := j.Append(1, 2, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, 3, []byte("retry")); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(3); err != nil {
		t.Fatal(err)
	}
	recs := mustReplay(t, store.Bytes(), 3)
	want := []Record{
		{Type: 1, Epoch: 1, Payload: []byte("one")},
		{Type: 1, Epoch: 3, Payload: []byte("retry")},
	}
	if !recordsEqual(recs, want) {
		t.Fatalf("got %+v, want %+v", recs, want)
	}
}

// TestCutEnumeration is the harness in miniature: journal a few epochs on
// a Tape, then cut at every event boundary in every damage mode and check
// that honest cuts replay the paired epoch exactly and corrupt cuts are
// either exact or typed.
func TestCutEnumeration(t *testing.T) {
	var tape Tape
	j := NewJournal(&tape)
	var pointsAtCommit []int // index e-1 -> tape points when epoch e committed
	var perEpoch [][]Record
	var cumulative []Record
	for e := uint64(1); e <= 3; e++ {
		for r := 0; r < 4; r++ {
			payload := []byte(fmt.Sprintf("e%dr%d", e, r))
			if err := j.Append(0x10, e, payload); err != nil {
				t.Fatal(err)
			}
			cumulative = append(cumulative, Record{Type: 0x10, Epoch: e, Payload: payload})
		}
		if err := j.Commit(e); err != nil {
			t.Fatal(err)
		}
		pointsAtCommit = append(pointsAtCommit, tape.Points())
		perEpoch = append(perEpoch, append([]Record(nil), cumulative...))
	}

	for e := 0; e <= tape.Points(); e++ {
		// Paired trusted epoch: the last one whose commit (including its
		// sync) completed at or before this cut.
		var target uint64
		for i, p := range pointsAtCommit {
			if p <= e {
				target = uint64(i + 1)
			}
		}
		for mode := DamageMode(0); mode < NumDamageModes; mode++ {
			durable := tape.Cut(e, mode, 42)
			recs, err := Replay(durable, target)
			if mode.Honest() {
				if err != nil {
					t.Fatalf("cut %d mode %v target %d: %v", e, mode, target, err)
				}
				if target > 0 && !recordsEqual(recs, perEpoch[target-1]) {
					t.Fatalf("cut %d mode %v target %d: wrong records", e, mode, target)
				}
				continue
			}
			if err != nil && !errors.Is(err, ErrTornCheckpoint) && !errors.Is(err, ErrRollback) {
				t.Fatalf("cut %d mode %v target %d: untyped error %v", e, mode, target, err)
			}
		}
	}
}

func TestCutDeterminism(t *testing.T) {
	var tape Tape
	j := NewJournal(&tape)
	for r := 0; r < 5; r++ {
		if err := j.Append(0x10, 1, bytes.Repeat([]byte{byte(r)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Commit(1); err != nil {
		t.Fatal(err)
	}
	for e := 0; e <= tape.Points(); e++ {
		for mode := DamageMode(0); mode < NumDamageModes; mode++ {
			a := tape.Cut(e, mode, 7)
			b := tape.Cut(e, mode, 7)
			if !bytes.Equal(a, b) {
				t.Fatalf("cut %d mode %v: nondeterministic", e, mode)
			}
		}
	}
}

func TestCrashStorePowerCut(t *testing.T) {
	cs := NewCrashStore(3, CutClean, 1)
	j := NewJournal(cs)
	var err error
	n := 0
	for e := uint64(1); err == nil && e < 10; e++ {
		if err = j.Append(0x10, e, []byte("x")); err == nil {
			n++
			err = j.Commit(e)
		}
	}
	if !errors.Is(err, ErrPowerLost) {
		t.Fatalf("journal against CrashStore: %v; want ErrPowerLost", err)
	}
	if !cs.Dead() {
		t.Fatal("CrashStore not dead after power cut")
	}
	// Everything after death keeps failing.
	if err := cs.Write([]byte("late")); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("post-cut Write: %v", err)
	}
	if err := cs.Sync(); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("post-cut Sync: %v", err)
	}
	// The durable image is whatever survived the cut: committed epoch 1
	// at most (cut after 3 events = append, sync, commit-write).
	if got := CommittedEpoch(cs.Durable()); got > 1 {
		t.Fatalf("CommittedEpoch after cut = %d; want <= 1", got)
	}
}

func TestCommittedEpoch(t *testing.T) {
	store := NewMemStore()
	journalEpochs(t, store, 3)
	if got := CommittedEpoch(store.Bytes()); got != 3 {
		t.Fatalf("CommittedEpoch = %d; want 3", got)
	}
	if got := CommittedEpoch(nil); got != 0 {
		t.Fatalf("CommittedEpoch(nil) = %d; want 0", got)
	}
	// Trailing garbage does not obscure the committed prefix.
	data := append(store.Bytes(), 0xDE, 0xAD, 0xBE, 0xEF)
	if got := CommittedEpoch(data); got != 3 {
		t.Fatalf("CommittedEpoch with trailing garbage = %d; want 3", got)
	}
}

func TestJournalRejectsReservedType(t *testing.T) {
	j := NewJournal(NewMemStore())
	if err := j.Append(TypeCommit, 1, nil); err == nil {
		t.Fatal("Append with commit type accepted")
	}
	if err := j.Append(0xFF, 1, nil); err == nil {
		t.Fatal("Append with reserved type accepted")
	}
}
