package link

import (
	"errors"
	"sync"
	"testing"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	plan, err := ParsePlan("down@0..1000")
	if err != nil {
		t.Fatal(err)
	}
	l := New(plan, Config{Threshold: 3, Cooldown: 5})

	// Three refusals observed from the plan open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := l.Transfer(); !errors.Is(err, ErrDown) {
			t.Fatalf("transfer %d: got %v, want ErrDown", i, err)
		}
	}
	if l.Breaker() != BreakerOpen {
		t.Fatalf("breaker = %v after threshold refusals, want open", l.Breaker())
	}

	// The next Cooldown transfers fast-fail without consulting the plan.
	for i := 0; i < 5; i++ {
		if _, err := l.Transfer(); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("cooldown transfer %d: got %v, want ErrBreakerOpen", i, err)
		}
	}

	// Then a half-open probe consults the plan (still down) and re-opens.
	if _, err := l.Transfer(); !errors.Is(err, ErrDown) {
		t.Fatalf("probe: got %v, want ErrDown", err)
	}
	st := l.Stats()
	if st.DownRefusals != 4 || st.FastFails != 5 || st.BreakerOpens != 2 || st.BreakerProbes != 1 {
		t.Fatalf("stats = %+v, want 4 refusals, 5 fast-fails, 2 opens, 1 probe", st)
	}
	// Fast-fails must not have advanced the plan: only 4 ordinals consumed.
	if got := plan.(*ScriptPlan).ordinal; got != 4 {
		t.Fatalf("plan ordinal = %d after fast-fails, want 4", got)
	}
}

func TestBreakerRecovers(t *testing.T) {
	plan, err := ParsePlan("down@0..4")
	if err != nil {
		t.Fatal(err)
	}
	l := New(plan, Config{Threshold: 3, Cooldown: 2})

	for i := 0; i < 3; i++ {
		if _, err := l.Transfer(); !errors.Is(err, ErrDown) {
			t.Fatalf("transfer %d: got %v, want ErrDown", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := l.Transfer(); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("cooldown %d: got %v, want ErrBreakerOpen", i, err)
		}
	}
	// First probe hits ordinal 3 — still inside the window — and re-opens.
	if _, err := l.Transfer(); !errors.Is(err, ErrDown) {
		t.Fatalf("probe 1: got %v, want ErrDown", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := l.Transfer(); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("cooldown 2.%d: got %v, want ErrBreakerOpen", i, err)
		}
	}
	// Second probe hits ordinal 4 — past the window — and closes.
	if _, err := l.Transfer(); err != nil {
		t.Fatalf("probe 2: got %v, want success", err)
	}
	if l.Breaker() != BreakerClosed {
		t.Fatalf("breaker = %v after recovery, want closed", l.Breaker())
	}
	st := l.Stats()
	if st.BreakerCloses != 1 || st.BreakerProbes != 2 {
		t.Fatalf("stats = %+v, want 1 close, 2 probes", st)
	}
	// A fresh refusal streak is required to re-open: recovery reset fails.
	if _, err := l.Transfer(); err != nil {
		t.Fatalf("post-recovery transfer: %v", err)
	}
}

func TestDegradedChargesLatency(t *testing.T) {
	plan, err := ParsePlan("deg@0..3:24")
	if err != nil {
		t.Fatal(err)
	}
	l := New(plan, DefaultConfig())
	for i := 0; i < 3; i++ {
		lat, err := l.Transfer()
		if err != nil {
			t.Fatalf("degraded transfer %d: %v", i, err)
		}
		if lat != 24 {
			t.Fatalf("degraded transfer %d latency = %d, want 24", i, lat)
		}
	}
	if lat, err := l.Transfer(); err != nil || lat != 0 {
		t.Fatalf("post-window transfer = (%d, %v), want (0, nil)", lat, err)
	}
	st := l.Stats()
	if st.DegradedTransfers != 3 || st.ExtraLatencyCycles != 72 {
		t.Fatalf("stats = %+v, want 3 degraded transfers, 72 extra cycles", st)
	}
	// up -> degraded -> up is two flaps.
	if st.Flaps != 2 {
		t.Fatalf("flaps = %d, want 2", st.Flaps)
	}
}

func TestForceUpClosesBreakerWithoutPlan(t *testing.T) {
	plan, err := ParsePlan("down@0..1000000")
	if err != nil {
		t.Fatal(err)
	}
	l := New(plan, Config{Threshold: 2, Cooldown: 4})
	for i := 0; i < 2; i++ {
		l.Transfer()
	}
	if l.Breaker() != BreakerOpen {
		t.Fatalf("breaker = %v, want open", l.Breaker())
	}
	consumed := plan.(*ScriptPlan).ordinal
	l.ForceUp()
	if l.Breaker() != BreakerClosed || l.LinkState() != StateUp {
		t.Fatalf("after ForceUp: breaker %v state %v, want closed/up", l.Breaker(), l.LinkState())
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Transfer(); err != nil {
			t.Fatalf("forced-up transfer %d: %v", i, err)
		}
	}
	// ForceUp pins the state without advancing the plan schedule.
	if got := plan.(*ScriptPlan).ordinal; got != consumed {
		t.Fatalf("plan ordinal advanced from %d to %d under ForceUp", consumed, got)
	}
}

func TestRatePlanDeterministic(t *testing.T) {
	mk := func() *RatePlan {
		p, err := ParsePlan("rate:seed=7,flap=0.1,downlen=6,deg=0.1,deglen=4,lat=8")
		if err != nil {
			t.Fatal(err)
		}
		return p.(*RatePlan)
	}
	a, b := mk(), mk()
	sawDown, sawDeg := false, false
	for i := 0; i < 2000; i++ {
		sa, sb := a.Next(), b.Next()
		if sa != sb {
			t.Fatalf("ordinal %d: %v != %v for identical seeds", i, sa, sb)
		}
		sawDown = sawDown || sa.State == StateDown
		sawDeg = sawDeg || sa.State == StateDegraded
	}
	if !sawDown || !sawDeg {
		t.Fatalf("rate plan never flapped in 2000 transfers (down=%v deg=%v)", sawDown, sawDeg)
	}
	// Reseeding rewinds to a fresh, equally deterministic schedule.
	a.Reseed(7)
	c := mk()
	for i := 0; i < 500; i++ {
		if sa, sc := a.Next(), c.Next(); sa != sc {
			t.Fatalf("ordinal %d after Reseed: %v != %v", i, sa, sc)
		}
	}
}

func TestManualConcurrentSet(t *testing.T) {
	m := NewManual()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Set(State(i % 3))
		}
	}()
	for i := 0; i < 10000; i++ {
		s := m.Next().State
		if s != StateUp && s != StateDegraded && s != StateDown {
			t.Fatalf("invalid state %v", s)
		}
	}
	close(stop)
	wg.Wait()
}

func TestFlapCounting(t *testing.T) {
	plan, err := ParsePlan("down@2..4,down@6..8")
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 1: every refusal opens, so probes keep consulting the plan
	// after one fast-fail each and the full schedule is observed.
	l := New(plan, Config{Threshold: 1, Cooldown: 1})
	for i := 0; i < 20; i++ {
		l.Transfer()
	}
	// up(0,1) down(2,3) up(4,5) down(6,7) up(...) = 4 transitions.
	if st := l.Stats(); st.Flaps != 4 {
		t.Fatalf("flaps = %d, want 4 (stats %+v)", st.Flaps, st)
	}
}
