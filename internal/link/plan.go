package link

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/salus-sim/salus/internal/sim"
)

// State is the operating condition of the CXL link.
type State int

const (
	// StateUp passes transfers at nominal latency.
	StateUp State = iota
	// StateDegraded passes transfers but charges extra cycles per
	// transfer — a latency spike or bandwidth collapse brownout.
	StateDegraded
	// StateDown refuses transfers.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDegraded:
		return "degraded"
	case StateDown:
		return "down"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Status is the link condition governing one transfer.
type Status struct {
	State State
	// ExtraLatency is the brownout surcharge per transfer; only
	// meaningful when State is StateDegraded.
	ExtraLatency sim.Cycle
}

// A Plan scripts the link condition over time. Next is consulted once per
// attempted transfer (one ordinal per chunk-sized home-tier access) and
// returns the condition governing it. Plans must be deterministic — the
// same plan value replays the same schedule — which is what makes
// link-chaos failures reproducible. String returns a canonical spec that
// ParsePlan decodes back into an equivalent fresh plan.
type Plan interface {
	Next() Status
	String() string
}

// Window is a half-open interval [From, To) of transfer ordinals during
// which a ScriptPlan reports a non-Up state.
type Window struct {
	From, To uint64
	State    State // StateDown or StateDegraded
	// ExtraLatency is the per-transfer surcharge; StateDegraded only.
	ExtraLatency sim.Cycle
}

// ScriptPlan replays explicit outage windows keyed by transfer ordinal.
// Ordinals outside every window are Up; the first matching window wins.
// Note that breaker fast-fails do not consult the plan, so an open
// breaker freezes the ordinal clock until its next half-open probe.
type ScriptPlan struct {
	Windows []Window

	ordinal uint64
}

// Next reports the condition for the current ordinal and advances it.
func (p *ScriptPlan) Next() Status {
	o := p.ordinal
	p.ordinal++
	for _, w := range p.Windows {
		if o >= w.From && o < w.To {
			return Status{State: w.State, ExtraLatency: w.ExtraLatency}
		}
	}
	return Status{}
}

// String returns the canonical window spec, e.g. "down@40..70,deg@100..200:24".
func (p *ScriptPlan) String() string {
	parts := make([]string, 0, len(p.Windows))
	for _, w := range p.Windows {
		tok := "down"
		if w.State == StateDegraded {
			tok = "deg"
		}
		s := fmt.Sprintf("%s@%d..%d", tok, w.From, w.To)
		if w.State == StateDegraded && w.ExtraLatency > 0 {
			s += ":" + strconv.FormatUint(uint64(w.ExtraLatency), 10)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ",")
}

// RatePlan flips the link at seeded random, modelling an unreliable
// transport: while Up, each transfer starts a Down episode with
// probability Flap and a Degraded episode with probability Deg. Episode
// lengths are geometric with means DownLen and DegLen transfers; every
// degraded transfer carries Lat extra cycles.
type RatePlan struct {
	Seed    int64
	Flap    float64
	DownLen float64
	Deg     float64
	DegLen  float64
	Lat     sim.Cycle

	rng       *rand.Rand
	cur       State
	remaining int
}

// maxEpisode caps a sampled episode length so a pathological draw cannot
// take the link down for an entire campaign.
const maxEpisode = 4096

// Reseed rewinds the plan to a fresh schedule drawn from seed.
func (p *RatePlan) Reseed(seed int64) {
	p.Seed = seed
	p.rng = nil
	p.cur = StateUp
	p.remaining = 0
}

func (p *RatePlan) episode(mean float64) int {
	n := 1 + int(p.rng.ExpFloat64()*mean)
	if n > maxEpisode {
		n = maxEpisode
	}
	return n
}

// Next reports the condition for this transfer and advances the schedule.
func (p *RatePlan) Next() Status {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.Seed))
	}
	if p.remaining > 0 {
		p.remaining--
		if p.cur == StateDegraded {
			return Status{State: StateDegraded, ExtraLatency: p.Lat}
		}
		return Status{State: p.cur}
	}
	p.cur = StateUp
	r := p.rng.Float64()
	switch {
	case r < p.Flap:
		p.cur = StateDown
		p.remaining = p.episode(p.DownLen) - 1
		return Status{State: StateDown}
	case r < p.Flap+p.Deg:
		p.cur = StateDegraded
		p.remaining = p.episode(p.DegLen) - 1
		return Status{State: StateDegraded, ExtraLatency: p.Lat}
	}
	return Status{}
}

// String returns the canonical rate spec with every field explicit.
func (p *RatePlan) String() string {
	return fmt.Sprintf("rate:seed=%d,flap=%s,downlen=%s,deg=%s,deglen=%s,lat=%d",
		p.Seed,
		strconv.FormatFloat(p.Flap, 'g', -1, 64),
		strconv.FormatFloat(p.DownLen, 'g', -1, 64),
		strconv.FormatFloat(p.Deg, 'g', -1, 64),
		strconv.FormatFloat(p.DegLen, 'g', -1, 64),
		uint64(p.Lat))
}

// Manual is a Plan driven externally with Set, for tests and examples
// that flip the link from another goroutine; Next never blocks and Set is
// safe to call concurrently with Next.
type Manual struct {
	state atomic.Int32
}

// NewManual returns a manual plan that starts Up.
func NewManual() *Manual { return &Manual{} }

// Set switches the link condition reported to subsequent transfers.
func (m *Manual) Set(s State) { m.state.Store(int32(s)) }

// Next reports the condition selected by the last Set (Up initially).
func (m *Manual) Next() Status { return Status{State: State(m.state.Load())} }

func (m *Manual) String() string { return "manual" }

// defaultRatePlan holds the rate-spec field defaults: a ~2% chance per
// transfer of a mean-16-transfer outage, a ~2% chance of a mean-12
// brownout at 16 extra cycles.
func defaultRatePlan() *RatePlan {
	return &RatePlan{Seed: 1, Flap: 0.02, DownLen: 16, Deg: 0.02, DegLen: 12, Lat: 16}
}

// ParsePlan decodes a link-plan spec. Three forms are accepted:
//
//	manual                          externally driven (tests, examples)
//	rate:seed=1,flap=0.02,...       seeded random flapping (keys: seed,
//	                                flap, downlen, deg, deglen, lat;
//	                                omitted keys keep their defaults)
//	down@40..70,deg@100..200:24     explicit windows over transfer
//	                                ordinals; ":n" adds n cycles of
//	                                latency to each degraded transfer
//
// The returned plan is fresh (its schedule starts at the beginning), and
// its String method returns a canonical spec ParsePlan accepts.
func ParsePlan(spec string) (Plan, error) {
	switch {
	case spec == "manual":
		return NewManual(), nil
	case strings.HasPrefix(spec, "rate:"):
		return parseRatePlan(strings.TrimPrefix(spec, "rate:"))
	case spec == "":
		return nil, fmt.Errorf("link: empty plan spec")
	}
	return parseScriptPlan(spec)
}

func parseRatePlan(body string) (*RatePlan, error) {
	p := defaultRatePlan()
	if body == "" {
		return p, nil
	}
	for _, kv := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("link: rate plan field %q is not key=value", kv)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("link: rate plan seed %q: %v", v, err)
			}
			p.Seed = n
		case "flap", "deg":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("link: rate plan %s %q: %v", k, v, err)
			}
			// The conjunction rejects NaN as well as out-of-range values.
			if !(x >= 0 && x <= 1) {
				return nil, fmt.Errorf("link: rate plan %s %q outside [0,1]", k, v)
			}
			if k == "flap" {
				p.Flap = x
			} else {
				p.Deg = x
			}
		case "downlen", "deglen":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("link: rate plan %s %q: %v", k, v, err)
			}
			if !(x >= 0 && x <= 1e9) {
				return nil, fmt.Errorf("link: rate plan %s %q outside [0,1e9]", k, v)
			}
			if k == "downlen" {
				p.DownLen = x
			} else {
				p.DegLen = x
			}
		case "lat":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("link: rate plan lat %q: %v", v, err)
			}
			if n > 1e9 {
				return nil, fmt.Errorf("link: rate plan lat %q exceeds 1e9 cycles", v)
			}
			p.Lat = sim.Cycle(n)
		default:
			return nil, fmt.Errorf("link: unknown rate plan field %q", k)
		}
	}
	if p.Flap+p.Deg > 1 {
		return nil, fmt.Errorf("link: rate plan flap+deg %g exceeds 1", p.Flap+p.Deg)
	}
	return p, nil
}

func parseScriptPlan(spec string) (*ScriptPlan, error) {
	p := &ScriptPlan{}
	for _, tok := range strings.Split(spec, ",") {
		w, err := parseWindow(tok)
		if err != nil {
			return nil, err
		}
		p.Windows = append(p.Windows, w)
	}
	return p, nil
}

func parseWindow(tok string) (Window, error) {
	var w Window
	st, rest, ok := strings.Cut(tok, "@")
	if !ok {
		return w, fmt.Errorf("link: window %q has no state@range", tok)
	}
	switch st {
	case "down":
		w.State = StateDown
	case "deg":
		w.State = StateDegraded
	default:
		return w, fmt.Errorf("link: window state %q is not down or deg", st)
	}
	rangePart := rest
	if r, lat, found := strings.Cut(rest, ":"); found {
		if w.State != StateDegraded {
			return w, fmt.Errorf("link: window %q: latency is only valid on deg windows", tok)
		}
		n, err := strconv.ParseUint(lat, 10, 64)
		if err != nil {
			return w, fmt.Errorf("link: window %q latency: %v", tok, err)
		}
		if n > 1e9 {
			return w, fmt.Errorf("link: window %q latency exceeds 1e9 cycles", tok)
		}
		w.ExtraLatency = sim.Cycle(n)
		rangePart = r
	}
	from, to, ok := strings.Cut(rangePart, "..")
	if !ok {
		return w, fmt.Errorf("link: window %q range is not from..to", tok)
	}
	f, err := strconv.ParseUint(from, 10, 64)
	if err != nil {
		return w, fmt.Errorf("link: window %q from: %v", tok, err)
	}
	t, err := strconv.ParseUint(to, 10, 64)
	if err != nil {
		return w, fmt.Errorf("link: window %q to: %v", tok, err)
	}
	if f >= t {
		return w, fmt.Errorf("link: window %q is empty (from >= to)", tok)
	}
	w.From, w.To = f, t
	return w, nil
}
