package link

import (
	"strings"
	"testing"
)

func TestScriptPlanSchedule(t *testing.T) {
	p, err := ParsePlan("down@2..4,deg@6..8:24")
	if err != nil {
		t.Fatal(err)
	}
	want := []Status{
		{State: StateUp}, {State: StateUp},
		{State: StateDown}, {State: StateDown},
		{State: StateUp}, {State: StateUp},
		{State: StateDegraded, ExtraLatency: 24}, {State: StateDegraded, ExtraLatency: 24},
		{State: StateUp},
	}
	for i, w := range want {
		if got := p.Next(); got != w {
			t.Fatalf("ordinal %d: got %+v, want %+v", i, got, w)
		}
	}
}

func TestScriptPlanFirstMatchWins(t *testing.T) {
	p := &ScriptPlan{Windows: []Window{
		{From: 0, To: 10, State: StateDegraded, ExtraLatency: 8},
		{From: 5, To: 15, State: StateDown},
	}}
	for i := 0; i < 10; i++ {
		if got := p.Next(); got.State != StateDegraded {
			t.Fatalf("ordinal %d: got %v, want degraded (first match)", i, got.State)
		}
	}
	if got := p.Next(); got.State != StateDown {
		t.Fatalf("ordinal 10: got %v, want down", got.State)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	specs := []string{
		"down@40..70",
		"down@40..70,deg@100..200:24",
		"deg@0..18446744073709551615:1000000000",
		"rate:seed=1,flap=0.02,downlen=16,deg=0.02,deglen=12,lat=16",
		"rate:seed=-9,flap=0.001,downlen=1e+06,deg=0,deglen=0,lat=0",
		"manual",
	}
	for _, spec := range specs {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Fatalf("ParsePlan(%q).String() = %q, want round-trip", spec, got)
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"",
		"sideways@1..2",
		"down@1..2:9",           // latency on a down window
		"down@5..5",             // empty window
		"down@7..3",             // inverted window
		"down@..3",              // missing from
		"down@1--3",             // bad range separator
		"rate:flap=1.5",         // probability out of range
		"rate:flap=nan",         // non-finite probability
		"rate:deg=-0.1",         // negative probability
		"rate:flap=0.9,deg=0.9", // probabilities sum past 1
		"rate:downlen=inf",      // non-finite length
		"rate:lat=-4",           // negative latency
		"rate:bogus=1",          // unknown key
		"rate:seed",             // not key=value
	}
	for _, spec := range bad {
		if p, err := ParsePlan(spec); err == nil {
			t.Fatalf("ParsePlan(%q) = %v, want error", spec, p)
		}
	}
}

func TestParsePlanRateDefaults(t *testing.T) {
	p, err := ParsePlan("rate:")
	if err != nil {
		t.Fatal(err)
	}
	rp, ok := p.(*RatePlan)
	if !ok {
		t.Fatalf("ParsePlan(rate:) = %T, want *RatePlan", p)
	}
	def := defaultRatePlan()
	if rp.Seed != def.Seed || rp.Flap != def.Flap || rp.Lat != def.Lat {
		t.Fatalf("rate defaults = %+v, want %+v", rp, def)
	}
}

// FuzzLinkPlan drives the flap-plan decoder with arbitrary specs: any
// spec that parses must produce a canonical String that re-parses to the
// same canonical form, and a fresh plan from it must emit only valid
// link states with latency confined to the degraded state.
func FuzzLinkPlan(f *testing.F) {
	f.Add("down@40..70,deg@100..200:24")
	f.Add("rate:seed=3,flap=0.1,downlen=8,deg=0.2,deglen=4,lat=32")
	f.Add("rate:")
	f.Add("manual")
	f.Add("deg@0..1:0,down@1..2")
	f.Add(strings.Repeat("down@1..2,", 40) + "down@1..2")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePlan(spec)
		if err != nil {
			return
		}
		canon := p.String()
		p2, err := ParsePlan(canon)
		if err != nil {
			t.Fatalf("canonical spec %q from %q does not re-parse: %v", canon, spec, err)
		}
		if got := p2.String(); got != canon {
			t.Fatalf("canonical spec is not a fixed point: %q -> %q", canon, got)
		}
		for i := 0; i < 200; i++ {
			st := p2.Next()
			switch st.State {
			case StateUp, StateDown:
				if st.ExtraLatency != 0 {
					t.Fatalf("ordinal %d: latency %d outside degraded state", i, st.ExtraLatency)
				}
			case StateDegraded:
			default:
				t.Fatalf("ordinal %d: invalid state %d", i, int(st.State))
			}
		}
	})
}
