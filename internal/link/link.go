// Package link models the CXL link between the GPU device tier and its
// home (expansion) tier as a deterministic, seeded state machine: Up,
// Degraded (transfers succeed with an extra-latency surcharge), or Down
// (transfers refused). A Link wraps a Plan with a circuit breaker so that
// during an outage callers fail fast instead of paying a refusal — and a
// retry budget — on every home-tier access.
//
// A Link is not goroutine-safe; serialize access through whatever lock
// guards the memory system it fronts (securemem.Concurrent does this).
package link

import (
	"errors"

	"github.com/salus-sim/salus/internal/sim"
)

// Transfer errors. ErrDown reports a refusal observed directly from the
// plan; ErrBreakerOpen reports a fast-fail while the breaker cools down
// (the plan was not consulted).
var (
	ErrDown        = errors.New("link: down")
	ErrBreakerOpen = errors.New("link: breaker open")
)

// BreakerState is the circuit-breaker position of a Link.
type BreakerState int

const (
	// BreakerClosed passes transfers through to the plan.
	BreakerClosed BreakerState = iota
	// BreakerOpen fast-fails transfers without consulting the plan.
	BreakerOpen
	// BreakerHalfOpen passes a single probe transfer through; success
	// closes the breaker, a refusal re-opens it.
	BreakerHalfOpen
)

func (b BreakerState) String() string {
	switch b {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "BreakerState(?)"
}

// Config tunes the circuit breaker. Both fields are attempt counts, not
// cycle counts: a down link charges no latency, so the sim clock does not
// advance during an outage and a time-based cooldown would never elapse.
type Config struct {
	// Threshold is the number of consecutive refusals that opens the
	// breaker.
	Threshold int
	// Cooldown is the number of fast-failed transfers an open breaker
	// absorbs before letting a half-open probe through to the plan.
	Cooldown int
}

// DefaultConfig opens after 3 consecutive refusals and probes after 8
// fast-fails.
func DefaultConfig() Config { return Config{Threshold: 3, Cooldown: 8} }

// Stats counts what the link did. All fields are monotone.
type Stats struct {
	// Transfers counts every Transfer call, including fast-fails.
	Transfers uint64
	// Flaps counts observed link-state transitions (fast-fails do not
	// observe the plan and so cannot flap).
	Flaps uint64
	// DownRefusals counts transfers the plan refused (ErrDown).
	DownRefusals uint64
	// FastFails counts transfers the open breaker refused without
	// consulting the plan (ErrBreakerOpen).
	FastFails uint64
	// BreakerOpens and BreakerCloses count breaker transitions;
	// BreakerProbes counts half-open probe admissions.
	BreakerOpens  uint64
	BreakerCloses uint64
	BreakerProbes uint64
	// DegradedTransfers counts transfers that succeeded in the degraded
	// state; ExtraLatencyCycles totals their latency surcharge.
	DegradedTransfers  uint64
	ExtraLatencyCycles uint64
}

// Link fronts a Plan with a circuit breaker.
type Link struct {
	plan     Plan
	cfg      Config
	breaker  BreakerState
	fails    int // consecutive refusals while closed
	cool     int // fast-fails remaining before a half-open probe
	last     State
	forcedUp bool
	st       Stats
}

// New returns a Link over plan. Non-positive Config fields fall back to
// DefaultConfig.
func New(plan Plan, cfg Config) *Link {
	def := DefaultConfig()
	if cfg.Threshold < 1 {
		cfg.Threshold = def.Threshold
	}
	if cfg.Cooldown < 1 {
		cfg.Cooldown = def.Cooldown
	}
	return &Link{plan: plan, cfg: cfg, last: StateUp}
}

// Transfer asks the link to carry one chunk-sized home-tier access. It
// returns the extra latency to charge to the sim clock (non-zero only in
// the degraded state) or a typed refusal: ErrDown when the plan refused
// the transfer, ErrBreakerOpen when the open breaker fast-failed it.
func (l *Link) Transfer() (sim.Cycle, error) {
	l.st.Transfers++
	if l.breaker == BreakerOpen {
		if l.cool > 0 {
			l.cool--
			l.st.FastFails++
			return 0, ErrBreakerOpen
		}
		l.breaker = BreakerHalfOpen
		l.st.BreakerProbes++
	}
	if l.forcedUp {
		l.observe(StateUp)
		l.recovered()
		return 0, nil
	}
	status := l.plan.Next()
	l.observe(status.State)
	switch status.State {
	case StateDown:
		l.st.DownRefusals++
		l.fails++
		if l.breaker == BreakerHalfOpen || l.fails >= l.cfg.Threshold {
			if l.breaker != BreakerOpen {
				l.st.BreakerOpens++
			}
			l.breaker = BreakerOpen
			l.cool = l.cfg.Cooldown
		}
		return 0, ErrDown
	case StateDegraded:
		l.recovered()
		l.st.DegradedTransfers++
		l.st.ExtraLatencyCycles += uint64(status.ExtraLatency)
		return status.ExtraLatency, nil
	}
	l.recovered()
	return 0, nil
}

// ForceUp pins the link up without consulting (or advancing) the plan:
// the reconciler uses it to model an operator-confirmed recovery before
// draining parked writebacks deterministically.
func (l *Link) ForceUp() {
	l.forcedUp = true
	l.recovered()
	l.observe(StateUp)
}

func (l *Link) observe(s State) {
	if s != l.last {
		l.st.Flaps++
		l.last = s
	}
}

func (l *Link) recovered() {
	l.fails = 0
	if l.breaker != BreakerClosed {
		l.breaker = BreakerClosed
		l.st.BreakerCloses++
	}
}

// Breaker reports the breaker position.
func (l *Link) Breaker() BreakerState { return l.breaker }

// LinkState reports the last observed plan state (Up before any
// transfer). While the breaker is open this is the state that opened it —
// the plan is not consulted during fast-fails.
func (l *Link) LinkState() State { return l.last }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() Stats { return l.st }
