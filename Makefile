# Developer entry points. CI (.github/workflows/ci.yml) runs exactly
# these targets so local and CI checking are identical.

GO ?= go

.PHONY: all build test lint vet fmt race fuzz-smoke check-smoke chaos-smoke crash-smoke link-smoke serve-smoke tenant-smoke migrate-smoke bench-baseline bench-record bench-compare ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the standard toolchain checks plus the project's custom
# analyzers — the per-package suite (address domains, lock discipline,
# dropped errors, counter widths) and the interprocedural suite
# (plaintext taint flow, lock-order cycles, sim-clock determinism) over
# one shared type-checked load. gofmt -l prints offending files; the
# subshell turns any output into a failure.
# SALUS_LINT_FLAGS lets CI pass -gha (inline PR annotations) without a
# second target.
lint: vet fmt
	$(GO) run ./cmd/salus-lint $(SALUS_LINT_FLAGS) ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# race covers the concurrency-sensitive packages. The experiments
# package is excluded: its campaigns are minutes-long under the race
# detector without exercising any extra locking.
race:
	$(GO) test -race ./internal/securemem ./internal/sim ./internal/pagecache \
		./internal/metrics ./internal/trace ./internal/serve ./internal/tenant \
		./internal/migrate

# fuzz-smoke gives the untrusted-input fuzzers a short budget each on top
# of any checked-in corpora: the trace parser, the two persistence
# decoders (suspend images and checkpoint journals + marshalled roots),
# and the link flap-plan parser. Go fuzzing takes exactly one target per
# invocation.
fuzz-smoke:
	$(GO) test ./internal/trace -run '^FuzzReadTrace$$' -fuzz '^FuzzReadTrace$$' -fuzztime 10s
	$(GO) test ./internal/securemem -run '^FuzzResume$$' -fuzz '^FuzzResume$$' -fuzztime 10s
	$(GO) test ./internal/securemem -run '^FuzzRecover$$' -fuzz '^FuzzRecover$$' -fuzztime 10s
	$(GO) test ./internal/link -run '^FuzzLinkPlan$$' -fuzz '^FuzzLinkPlan$$' -fuzztime 10s
	$(GO) test ./internal/tenant -run '^FuzzTenantConfig$$' -fuzz '^FuzzTenantConfig$$' -fuzztime 10s
	$(GO) test ./internal/migrate -run '^FuzzMigrationFrame$$' -fuzz '^FuzzMigrationFrame$$' -fuzztime 10s

# check-smoke runs the differential model-equivalence checker under the
# race detector with the CI budget: 25 seeds × 200 randomized ops against
# all three protection models plus the plain oracle.
check-smoke:
	$(GO) run -race ./cmd/salus-check -seeds 25 -ops 200

# chaos-smoke replays the same budget with fault injection armed, under
# both plans: recoverable (transient link faults must leave plaintext
# byte-identical) and unrecoverable (every media error must surface as a
# typed error or quarantine — never a silent divergence).
chaos-smoke:
	$(GO) run -race ./cmd/salus-check -seeds 25 -ops 200 -chaos recoverable
	$(GO) run -race ./cmd/salus-check -seeds 25 -ops 200 -chaos unrecoverable

# crash-smoke runs power-loss injection on the checkpoint journal under
# the race detector: every seed's journal tape is cut at every write/sync
# boundary under every damage mode, and each cut must recover the last
# committed epoch byte-identically or fail with a typed torn/rollback
# error. The deeper acceptance campaign is the same command with
# -seeds 50.
crash-smoke:
	$(GO) run -race ./cmd/salus-check -crash -seeds 8 -ops 72 -pages 8 -devpages 2

# link-smoke runs CXL link-chaos verification under the race detector:
# every seed replays under scripted flap windows, a long outage, a
# brownout, and a rate-driven plan, asserting that device hits keep
# serving, refused ops fail typed, parked writebacks all drain on
# recovery byte-identically, and a home rollback staged during an outage
# is detected on drain. The deeper acceptance campaign is the same
# command with -seeds 50.
link-smoke:
	$(GO) run -race ./cmd/salus-check -link -seeds 12 -ops 120

# serve-smoke runs the combined-chaos traffic campaign under the race
# detector: concurrent client streams through the admission/deadline/
# retry pipeline while transient faults, link outages, quiesced
# checkpoints, and crash/recover cycles fire mid-traffic. Asserts zero
# silent divergences after quiesce, every rejection typed, and the
# interactive-class availability SLO on the aggregate. The deeper
# acceptance campaign is the same command with -seeds 50.
serve-smoke:
	$(GO) run -race ./cmd/salus-check -serve -seeds 6

# tenant-smoke runs the hostile-tenant containment campaign under the
# race detector: victim, bystander, and attacker tenants share one CXL
# pool with per-tenant key domains while chaos (faults, link outages,
# crash/recover, replayed-ciphertext splices) fires on the attacker
# only. Asserts every cross-tenant probe is refused typed, every replay
# is rejected, and the healthy tenants' bytes and availability are
# untouched. The deeper acceptance campaign is the same command with
# -seeds 50.
tenant-smoke:
	$(GO) run -race ./cmd/salus-check -tenant -seeds 6

# migrate-smoke runs the attested live-migration campaign under the
# race detector: differential-oracle migrations between pools, a cutover
# under live serve traffic, man-in-the-middle stream attacks at every
# record boundary, endpoint crashes at every stream boundary, link-loss
# park/resume, and source-identity retirement — with bystander tenants
# on every pool asserted zero-blast-radius. The deeper acceptance
# campaign is the same command with -seeds 50.
migrate-smoke:
	$(GO) run -race ./cmd/salus-check -migrate -seeds 6

# bench-baseline refreshes the checked-in perf baseline: the quick
# variant of every salus-bench workload, in JSON, written to
# BENCH_seed.json. Later PRs compare against it to hold the ROADMAP
# item-2 perf trajectory; regenerate only on machine-class changes.
bench-baseline:
	$(GO) run ./cmd/salus-bench -quick -all -format json > BENCH_seed.json

# bench-record refreshes the checked-in wall-clock perf snapshot
# (BENCH_perf.json): sharded-vs-global Concurrent throughput and the
# crypto hot-path timings and allocation counts, measured by
# internal/perfbench. Distinct from BENCH_seed.json, which records
# simulated-time workload results — this one is about the library's own
# wall-clock hot paths. Regenerate when the measured design changes on
# purpose or the CI machine class changes.
bench-record:
	$(GO) run ./cmd/salus-bench -perf > BENCH_perf.json

# bench-compare is the perf-trajectory gate: re-measures the same cases
# and fails against the recorded snapshot on a lost sharding speedup, a
# new allocation on a crypto hot path, a dropped case, or ns/op drift
# beyond a generous budget (raw wall-clock moves with the machine; the
# within-run ratios are the real gates). The fresh measurement lands in
# bench-current.json (not checked in) so a failed gate can be diffed
# offline; CI uploads both files as an artifact.
bench-compare:
	$(GO) run ./cmd/salus-bench -perf -perf-compare BENCH_perf.json > bench-current.json

ci: build lint test race fuzz-smoke check-smoke chaos-smoke crash-smoke link-smoke serve-smoke tenant-smoke migrate-smoke bench-compare
