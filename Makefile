# Developer entry points. CI (.github/workflows/ci.yml) runs exactly
# these targets so local and CI checking are identical.

GO ?= go

.PHONY: all build test lint vet fmt race fuzz-smoke check-smoke chaos-smoke ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the standard toolchain checks plus the project's custom
# analyzers (address domains, lock discipline, dropped errors, counter
# widths). gofmt -l prints offending files; the subshell turns any
# output into a failure.
lint: vet fmt
	$(GO) run ./cmd/salus-lint ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# race covers the concurrency-sensitive packages. The experiments
# package is excluded: its campaigns are minutes-long under the race
# detector without exercising any extra locking.
race:
	$(GO) test -race ./internal/securemem ./internal/sim ./internal/pagecache \
		./internal/metrics ./internal/trace

# fuzz-smoke gives the trace-parser fuzzer a short budget on top of the
# checked-in corpus (internal/trace/testdata/fuzz).
fuzz-smoke:
	$(GO) test ./internal/trace -run '^FuzzReadTrace$$' -fuzz '^FuzzReadTrace$$' -fuzztime 10s

# check-smoke runs the differential model-equivalence checker under the
# race detector with the CI budget: 25 seeds × 200 randomized ops against
# all three protection models plus the plain oracle.
check-smoke:
	$(GO) run -race ./cmd/salus-check -seeds 25 -ops 200

# chaos-smoke replays the same budget with fault injection armed, under
# both plans: recoverable (transient link faults must leave plaintext
# byte-identical) and unrecoverable (every media error must surface as a
# typed error or quarantine — never a silent divergence).
chaos-smoke:
	$(GO) run -race ./cmd/salus-check -seeds 25 -ops 200 -chaos recoverable
	$(GO) run -race ./cmd/salus-check -seeds 25 -ops 200 -chaos unrecoverable

ci: build lint test race fuzz-smoke check-smoke chaos-smoke
